//! Property tests for the trace layer's aggregate algebra.
//!
//! The parallel sweep runner folds per-cell histograms with
//! `LatencyHistogram::merge` / `RunTrace::merge_aggregates`; for the
//! merged result to be independent of job count and merge order, merging
//! must be associative, commutative, and equal to recording every sample
//! into a single histogram serially. These tests pin that algebra down
//! over arbitrary sample sets.

use proptest::prelude::*;

use mcm_sim::{LatencyHistogram, RunTrace, TraceStage};

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny latencies (dense low buckets, incl. zero) with huge ones
    // so merges cross the whole log2 bucket range.
    proptest::collection::vec(
        prop_oneof![0u64..16, 16u64..4096, (1u64 << 30)..(1u64 << 40)],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard histograms equals one serial histogram over the
    /// concatenated samples, regardless of how the samples are split.
    #[test]
    fn merge_equals_serial_run(a in samples(), b in samples(), c in samples()) {
        let mut serial = LatencyHistogram::new();
        for &s in a.iter().chain(&b).chain(&c) {
            serial.record(s);
        }
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        merged.merge(&hist_of(&c));
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.count(), (a.len() + b.len() + c.len()) as u64);
        let expect_sum: u64 = a.iter().chain(&b).chain(&c).sum();
        prop_assert_eq!(merged.sum(), expect_sum);
    }

    /// Histogram merge commutes: `a ∪ b == b ∪ a`.
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge associates: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Exact tallies survive any merge: min/max/mean of the merged
    /// histogram match the concatenated sample set.
    #[test]
    fn merged_tallies_are_exact(a in samples(), b in samples()) {
        let mut m = hist_of(&a);
        m.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(m.min(), all.iter().copied().min());
        prop_assert_eq!(m.max(), all.iter().copied().max());
        if !all.is_empty() {
            let mean = all.iter().sum::<u64>() as f64 / all.len() as f64;
            prop_assert!((m.mean() - mean).abs() < 1e-6);
            // Quantiles are monotone and bounded by the exact max.
            let p50 = m.quantile_upper_bound(0.5).unwrap();
            let p100 = m.quantile_upper_bound(1.0).unwrap();
            prop_assert!(p50 <= p100);
            prop_assert_eq!(Some(p100), m.max());
        }
    }

    /// `RunTrace::merge_aggregates` commutes on the aggregate state
    /// (histograms + per-class counters + events_seen), mirroring the
    /// histogram law one level up.
    #[test]
    fn run_trace_merge_matches_serial(
        a in samples(),
        b in samples(),
    ) {
        let per_stage = |xs: &[u64]| {
            let mut t = RunTrace::new();
            for (i, &s) in xs.iter().enumerate() {
                t.record_sample(TraceStage::ALL[i % TraceStage::ALL.len()], s);
            }
            t
        };
        let mut serial = RunTrace::new();
        // Serial reference: shard-a samples then shard-b samples, each
        // striped over the stages the same way the shards stripe them.
        for (i, &s) in a.iter().enumerate() {
            serial.record_sample(TraceStage::ALL[i % TraceStage::ALL.len()], s);
        }
        for (i, &s) in b.iter().enumerate() {
            serial.record_sample(TraceStage::ALL[i % TraceStage::ALL.len()], s);
        }
        let mut merged = per_stage(&a);
        merged.merge_aggregates(&per_stage(&b));
        for stage in TraceStage::ALL {
            prop_assert_eq!(merged.hist(stage), serial.hist(stage));
        }
        prop_assert_eq!(merged.total_cycles(), serial.total_cycles());
    }
}
