//! Per-data-structure access patterns.
//!
//! Each pattern realises one chiplet-locality shape from the paper's §3.4
//! taxonomy. The key construction is [`Pattern::Sliced`]: within every
//! `period` bytes of the structure, threadblock `t` of `n` touches the
//! `[t/n, (t+1)/n)` slice. Under contiguous TB scheduling (`tb_chiplet`),
//! each period therefore splits into `num_chiplets` contiguous per-chiplet
//! segments of `period / num_chiplets` bytes — the structure's
//! chiplet-locality group size. `period == 0` denotes a single period (pure
//! block partitioning: huge groups, large-page friendly).

use mcm_types::{TbId, WarpId};
use rand::rngs::StdRng;
use rand::Rng;

/// Cache-line granularity of generated addresses.
pub const LINE: u64 = 128;

/// How one kernel part touches one data structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// C-periodic slicing (see module docs). `halo` is the probability an
    /// access lands in the neighbouring TB's slice (stencil boundary
    /// exchange).
    Sliced {
        /// Slicing period in bytes; 0 = whole structure.
        period: u64,
        /// Probability of touching the adjacent slice.
        halo: f64,
    },
    /// Uniform random over the structure (globally scattered data).
    Uniform,
    /// Globally shared data that every threadblock streams *in order*
    /// (GEMM matrix B: all tiles consume B along the K dimension
    /// together). Fill is prefix-dense but every chiplet touches
    /// everything.
    SharedSweep,
    /// A 2D working set: threadblock tiles of `tile_rows` rows over an
    /// image whose row is `row_bytes`. Contiguous threadblocks tile
    /// row-major, so chiplets own horizontal bands (large locality groups,
    /// 2MB-friendly) while each TB touches `tile_rows` row-strided pages —
    /// the TLB pressure 2D kernels exhibit.
    Tiled2D {
        /// Bytes per image row.
        row_bytes: u64,
        /// Rows per threadblock tile.
        tile_rows: u64,
    },
    /// With probability `locality`, behaves like `Sliced { period }`;
    /// otherwise shared. `spread == 0` models globally shared reads (all
    /// chiplets stream the same data: graph neighbours, frontier pulls) as
    /// an in-order shared sweep; `spread > 0` scatters within ±`spread`
    /// bytes of the in-order position (local irregularity, e.g.
    /// pathfinder's bounded row neighbourhoods).
    Irregular {
        /// Slicing period for the local fraction; 0 = whole structure.
        period: u64,
        /// Fraction of accesses that respect the slicing.
        locality: f64,
        /// Scatter radius in bytes for the irregular fraction (0 =
        /// whole structure).
        spread: u64,
    },
    /// Block-partitioned like `Sliced { period: 0 }` but touching only
    /// every `stride_pages`-th 64KB page of the slice (triangular/sparse
    /// sweeps, e.g. LUD): VA blocks fill slowly and non-contiguously.
    SparseStrided {
        /// Stride between touched pages, in 64KB pages.
        stride_pages: u64,
    },
}

impl Pattern {
    /// Number of *unique* line addresses this pattern will emit per warp
    /// before repeating, given `n_unique` requested uniques.
    pub(crate) fn cycle_len(&self, n_unique: usize) -> usize {
        n_unique.max(1)
    }

    /// The `k`-th unique line address (an offset into the structure) for
    /// warp `warp` of threadblock `tb`.
    ///
    /// `bytes` is the structure (or window) length; `num_tbs` and
    /// `warps_per_tb` describe the launch. `rng` supplies randomness for
    /// `Uniform`/`Irregular`/halo decisions and is part of the warp's
    /// deterministic stream.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn offset(
        &self,
        k: usize,
        n_unique: usize,
        tb: TbId,
        warp: WarpId,
        num_tbs: u32,
        warps_per_tb: u32,
        bytes: u64,
        rng: &mut StdRng,
    ) -> u64 {
        match *self {
            Pattern::Sliced { period, halo } => {
                let jitter = halo > 0.0 && rng.gen_bool(halo);
                sliced_offset(k, tb, warp, num_tbs, warps_per_tb, bytes, period, jitter)
            }
            Pattern::Uniform => uniform_offset(bytes, rng),
            Pattern::SharedSweep => shared_sweep_offset(k, n_unique, tb, warp, bytes),
            Pattern::Tiled2D {
                row_bytes,
                tile_rows,
            } => tiled_offset(
                k,
                tb,
                warp,
                num_tbs,
                warps_per_tb,
                bytes,
                row_bytes,
                tile_rows,
            ),
            Pattern::Irregular {
                period,
                locality,
                spread,
            } => {
                let base = sliced_offset(k, tb, warp, num_tbs, warps_per_tb, bytes, period, false);
                if rng.gen_bool(locality.clamp(0.0, 1.0)) {
                    base
                } else if spread == 0 {
                    shared_sweep_offset(k, n_unique, tb, warp, bytes)
                } else {
                    // Scatter behind the in-order position: local
                    // irregularity revisits data the sweep already
                    // produced, so owners win first-touch races while the
                    // accesses themselves still cross slice (and chiplet)
                    // boundaries.
                    let lo = base.saturating_sub(spread);
                    let lines = ((base - lo) / LINE).max(1);
                    lo + rng.gen_range(0..lines) * LINE
                }
            }
            Pattern::SparseStrided { stride_pages } => {
                sparse_offset(k, tb, warp, num_tbs, warps_per_tb, bytes, stride_pages)
            }
        }
    }

    /// The static-analysis view of this pattern (what LASP/SUV would
    /// conclude; §5.2).
    pub fn static_hint(&self) -> mcm_sim::StaticHint {
        match *self {
            Pattern::Sliced { period, .. } => mcm_sim::StaticHint::Partitioned {
                period_bytes: period,
            },
            // Row-major tiling yields contiguous per-chiplet bands.
            Pattern::Tiled2D { .. } => mcm_sim::StaticHint::Partitioned { period_bytes: 0 },
            Pattern::SparseStrided { .. } => mcm_sim::StaticHint::Partitioned { period_bytes: 0 },
            Pattern::Uniform | Pattern::SharedSweep => mcm_sim::StaticHint::Shared,
            Pattern::Irregular { .. } => mcm_sim::StaticHint::Irregular,
        }
    }
}

fn uniform_offset(bytes: u64, rng: &mut StdRng) -> u64 {
    let lines = (bytes / LINE).max(1);
    rng.gen_range(0..lines) * LINE
}

/// All warps stream the structure front-to-back together; each warp
/// samples every `bytes / n_unique` bytes with a per-warp jitter so the
/// union of warps covers every page while fill stays prefix-dense.
fn shared_sweep_offset(k: usize, n_unique: usize, tb: TbId, warp: WarpId, bytes: u64) -> u64 {
    let stride = (bytes / n_unique.max(1) as u64).max(LINE) & !(LINE - 1);
    let h = (tb.index() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(warp.index() as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let jitter = (h % (stride / LINE).max(1)) * LINE;
    (k as u64 * stride + jitter) % bytes.max(LINE)
}

/// See module docs: TB `t` owns slice `[t/n, (t+1)/n)` of each period; the
/// warp sub-divides the slice and walks a bounded number of positions per
/// period, staggered across periods so the union of warps covers the
/// structure.
#[allow(clippy::too_many_arguments)]
fn sliced_offset(
    k: usize,
    tb: TbId,
    warp: WarpId,
    num_tbs: u32,
    warps_per_tb: u32,
    bytes: u64,
    period: u64,
    halo_jitter: bool,
) -> u64 {
    let period = if period == 0 || period > bytes {
        bytes
    } else {
        period
    };
    let periods = (bytes / period).max(1);
    let slice = (period / num_tbs as u64).max(LINE);
    let sub = (slice / warps_per_tb as u64).max(LINE);
    // Up to 4 distinct positions per period per warp, spread through the
    // sub-slice. Warps sweep periods front-to-back inside a small stagger
    // window (periods/8): the address space fills prefix-dense — as
    // wavefront kernel execution does, so early VA blocks become fully
    // mapped during PMM — while the live translation working set spans a
    // realistic multi-period window rather than a single period.
    let lines_pp = (sub / LINE).clamp(1, 4);
    let window = (periods / 8).max(1);
    let j0 = (tb.index() as u64 * warps_per_tb as u64 + warp.index() as u64)
        .wrapping_mul(0x9E37_79B9)
        % window;
    let j = (j0 + k as u64 / lines_pp) % periods;
    let l = k as u64 % lines_pp;
    // Halo reads target the *previous* TB's slice: stencil boundary reads
    // consume data the neighbour has already produced, so the owner is
    // (almost) always the first toucher of its own pages.
    let tb_for_slice = if halo_jitter {
        (tb.index() as u64 + num_tbs as u64 - 1) % num_tbs as u64
    } else {
        tb.index() as u64
    };
    let slice_start = (tb_for_slice * period) / num_tbs as u64;
    let sub_start = warp.index() as u64 % warps_per_tb as u64 * sub;
    let within = (l * (sub / lines_pp)) & !(LINE - 1);
    let off = j * period + (slice_start + sub_start + within).min(period - LINE);
    off.min(bytes - LINE)
}

/// Row-major 2D tiling: TB `t` covers a `tile_rows`-row tile; access `k`
/// walks the tile row by row, so a TB touches `tile_rows` row-strided
/// pages. Contiguous TBs tile row-major.
#[allow(clippy::too_many_arguments)]
fn tiled_offset(
    k: usize,
    tb: TbId,
    warp: WarpId,
    num_tbs: u32,
    warps_per_tb: u32,
    bytes: u64,
    row_bytes: u64,
    tile_rows: u64,
) -> u64 {
    let row_bytes = row_bytes.clamp(LINE, bytes);
    let image_rows = (bytes / row_bytes).max(1);
    let tile_rows = tile_rows.clamp(1, image_rows);
    let tile_cols_total = num_tbs as u64 * tile_rows / image_rows;
    let tiles_per_row = tile_cols_total.max(1);
    let tile_w = (row_bytes / tiles_per_row).max(LINE);
    let tile_row_idx = tb.index() as u64 / tiles_per_row;
    let tile_col_idx = tb.index() as u64 % tiles_per_row;
    let sub_w = (tile_w / warps_per_tb as u64).max(LINE);
    let lines_pr = (sub_w / LINE).clamp(1, 2);
    let r = (k as u64 / lines_pr) % tile_rows;
    let col = tile_col_idx * tile_w
        + warp.index() as u64 % warps_per_tb as u64 * sub_w
        + (k as u64 % lines_pr) * (sub_w / lines_pr);
    let off =
        (tile_row_idx * tile_rows + r) * row_bytes + (col & !(LINE - 1)).min(row_bytes - LINE);
    off.min(bytes - LINE)
}

fn sparse_offset(
    k: usize,
    tb: TbId,
    warp: WarpId,
    num_tbs: u32,
    warps_per_tb: u32,
    bytes: u64,
    stride_pages: u64,
) -> u64 {
    const PAGE: u64 = 64 * 1024;
    let slice = (bytes / num_tbs as u64).max(PAGE);
    let slice_start = (tb.index() as u64 * bytes) / num_tbs as u64;
    let slice_pages = slice / PAGE;
    // Walk the slice's pages with a stride (coprime strides eventually
    // cover every page, but coverage is sparse-in-time: VA blocks are only
    // partially mapped while CLAP profiles — the LUD edge case of §4.5).
    let page = (k as u64 * stride_pages.max(1)) % slice_pages;
    let line_in_page = (k as u64 / slice_pages + warp.index() as u64 * 8) % (PAGE / LINE);
    let off = slice_start + page * PAGE + line_in_page * LINE;
    let _ = warps_per_tb;
    off.min(bytes - LINE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sliced_respects_tb_slices() {
        // 4MB structure, 1MB period, 64 TBs, 4 warps: slice = 16KB.
        let bytes = 4 << 20;
        let period = 1 << 20;
        let mut r = rng();
        for tb in [0u32, 17, 63] {
            for k in 0..32 {
                let off = Pattern::Sliced { period, halo: 0.0 }.offset(
                    k,
                    32,
                    TbId::new(tb),
                    WarpId::new(1),
                    64,
                    4,
                    bytes,
                    &mut r,
                );
                assert!(off < bytes);
                assert_eq!(off % LINE, 0);
                let within_period = off % period;
                let slice = period / 64;
                assert!(
                    within_period >= tb as u64 * slice && within_period < (tb as u64 + 1) * slice,
                    "tb {tb} k {k}: {within_period:#x} outside its slice"
                );
            }
        }
    }

    #[test]
    fn sliced_zero_period_means_whole_structure() {
        let bytes = 8 << 20;
        let mut r = rng();
        let off = Pattern::Sliced {
            period: 0,
            halo: 0.0,
        }
        .offset(0, 32, TbId::new(3), WarpId::new(0), 8, 4, bytes, &mut r);
        // TB 3 of 8 owns [3MB, 4MB).
        assert!((3 << 20..4 << 20).contains(&off));
    }

    #[test]
    fn halo_touches_neighbour_slice() {
        let bytes = 4 << 20;
        let mut r = rng();
        let p = Pattern::Sliced {
            period: 0,
            halo: 1.0,
        };
        let off = p.offset(0, 32, TbId::new(1), WarpId::new(0), 4, 4, bytes, &mut r);
        // With halo probability 1, TB 1 reads from TB 0's slice.
        assert!(off < bytes / 4);
    }

    #[test]
    fn uniform_is_line_aligned_and_in_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let off =
                Pattern::Uniform.offset(0, 32, TbId::new(0), WarpId::new(0), 4, 4, 1 << 20, &mut r);
            assert!(off < 1 << 20);
            assert_eq!(off % LINE, 0);
        }
    }

    #[test]
    fn irregular_mixes_local_and_random() {
        let bytes = 16 << 20;
        let mut r = rng();
        let p = Pattern::Irregular {
            period: 0,
            locality: 0.5,
            spread: 0,
        };
        let mut inside = 0;
        let n = 400;
        for k in 0..n {
            let off = p.offset(k, 32, TbId::new(0), WarpId::new(0), 4, 4, bytes, &mut r);
            if off < bytes / 4 {
                inside += 1;
            }
        }
        // ~ 0.5 + 0.5*0.25 = 62.5% expected inside TB 0's quarter.
        assert!(inside > n / 2, "only {inside}/{n} inside home slice");
        assert!(inside < n, "never random");
    }

    #[test]
    fn sparse_strided_skips_pages() {
        let bytes = 64 << 20;
        let mut r = rng();
        let p = Pattern::SparseStrided { stride_pages: 4 };
        let o0 = p.offset(0, 32, TbId::new(0), WarpId::new(0), 16, 4, bytes, &mut r);
        let o1 = p.offset(1, 32, TbId::new(0), WarpId::new(0), 16, 4, bytes, &mut r);
        assert_eq!((o1 - o0) / (64 * 1024), 4);
    }

    #[test]
    fn shared_sweep_is_ordered_and_covers() {
        let bytes = 4 << 20;
        let n_unique = 32;
        // Positions ascend with k (prefix-dense fill) for any warp.
        let mut prev = 0;
        for k in 0..n_unique {
            let off = shared_sweep_offset(k, n_unique, TbId::new(3), WarpId::new(1), bytes);
            assert!(off < bytes);
            assert_eq!(off % LINE, 0);
            if k > 0 {
                assert!(off >= prev, "sweep must ascend: {off} after {prev}");
            }
            prev = off;
        }
        // The union over many (tb, warp) jitters covers every 64KB page.
        let mut pages = std::collections::HashSet::new();
        for tb in 0..64u32 {
            for w in 0..4u32 {
                for k in 0..n_unique {
                    let off =
                        shared_sweep_offset(k, n_unique, TbId::new(tb), WarpId::new(w), bytes);
                    pages.insert(off / (64 * 1024));
                }
            }
        }
        assert_eq!(pages.len() as u64, bytes / (64 * 1024));
    }

    #[test]
    fn tiled_2d_touches_row_strided_pages() {
        // 64MB image, 64KB rows, 8-row tiles, 1024 TBs: each TB touches 8
        // distinct row-strided 64KB pages.
        let bytes = 64 << 20;
        let p = Pattern::Tiled2D {
            row_bytes: 64 * 1024,
            tile_rows: 8,
        };
        let mut r = rng();
        let mut pages = std::collections::HashSet::new();
        for k in 0..32 {
            let off = p.offset(
                k,
                32,
                TbId::new(17),
                WarpId::new(2),
                1024,
                16,
                bytes,
                &mut r,
            );
            assert!(off < bytes);
            pages.insert(off / (64 * 1024));
        }
        assert_eq!(pages.len(), 8, "one page per tile row");
        // And adjacent TBs of the same tile row stay within the same rows
        // (horizontal neighbours -> same chiplet band).
        let rows17: std::collections::HashSet<u64> = (0..32)
            .map(|k| {
                p.offset(
                    k,
                    32,
                    TbId::new(17),
                    WarpId::new(0),
                    1024,
                    16,
                    bytes,
                    &mut r,
                ) / (64 * 1024)
            })
            .collect();
        let rows18: std::collections::HashSet<u64> = (0..32)
            .map(|k| {
                p.offset(
                    k,
                    32,
                    TbId::new(18),
                    WarpId::new(0),
                    1024,
                    16,
                    bytes,
                    &mut r,
                ) / (64 * 1024)
            })
            .collect();
        assert_eq!(rows17, rows18, "same tile row -> same pages");
    }

    #[test]
    fn irregular_spread_zero_is_a_shared_sweep() {
        // With locality 0, every access follows the ordered shared sweep.
        let p = Pattern::Irregular {
            period: 0,
            locality: 0.0,
            spread: 0,
        };
        let mut r = rng();
        let bytes = 8 << 20;
        let a = p.offset(0, 16, TbId::new(0), WarpId::new(0), 64, 4, bytes, &mut r);
        let b = p.offset(8, 16, TbId::new(0), WarpId::new(0), 64, 4, bytes, &mut r);
        assert!(b > a, "sweep ascends");
    }

    #[test]
    fn irregular_spread_trails_the_sweep() {
        // Backward scatter: the irregular fraction lands at or before the
        // in-order position, so owners win first-touch races.
        let p = Pattern::Irregular {
            period: 1 << 20,
            locality: 0.0,
            spread: 64 * 1024,
        };
        let mut r = rng();
        let bytes = 8 << 20;
        for k in 0..64 {
            let base = sliced_offset(
                k,
                TbId::new(32),
                WarpId::new(1),
                64,
                4,
                bytes,
                1 << 20,
                false,
            );
            let got = p.offset(k, 64, TbId::new(32), WarpId::new(1), 64, 4, bytes, &mut r);
            assert!(got <= base, "scatter must trail: {got} > {base}");
            assert!(base - got <= 64 * 1024 + LINE);
        }
    }

    #[test]
    fn offsets_are_deterministic_per_seed() {
        let p = Pattern::Irregular {
            period: 1 << 20,
            locality: 0.7,
            spread: 1 << 20,
        };
        let mut r1 = rng();
        let mut r2 = rng();
        for k in 0..50 {
            let a = p.offset(
                k,
                32,
                TbId::new(5),
                WarpId::new(2),
                64,
                4,
                32 << 20,
                &mut r1,
            );
            let b = p.offset(
                k,
                32,
                TbId::new(5),
                WarpId::new(2),
                64,
                4,
                32 << 20,
                &mut r2,
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn static_hints_match_patterns() {
        use mcm_sim::StaticHint;
        assert_eq!(
            Pattern::Sliced {
                period: 4096,
                halo: 0.0
            }
            .static_hint(),
            StaticHint::Partitioned { period_bytes: 4096 }
        );
        assert_eq!(Pattern::Uniform.static_hint(), StaticHint::Shared);
        assert_eq!(
            Pattern::Irregular {
                period: 0,
                locality: 0.5,
                spread: 0
            }
            .static_hint(),
            StaticHint::Irregular
        );
        assert_eq!(
            Pattern::SparseStrided { stride_pages: 2 }.static_hint(),
            StaticHint::Partitioned { period_bytes: 0 }
        );
    }
}
