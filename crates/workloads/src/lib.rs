//! Synthetic GPU workload generators for the CLAP reproduction.
//!
//! The paper's evaluation (Table 2) drives 15 CUDA benchmarks through a
//! GPGPU-Sim-based MCM model. Neither the binaries nor their traces exist
//! here, so this crate generates *synthetic but behaviour-equivalent*
//! access streams: §3.4 of the paper shows the decisive property of each
//! data structure is its **chiplet-locality** — the period with which
//! virtually contiguous regions rotate across the chiplets that access
//! them — plus its shared fraction, footprint, and reuse. Each workload
//! below reproduces those properties (see `DESIGN.md` for the full
//! substitution argument).
//!
//! Footprints are 1/8 of the paper's inputs by default
//! ([`FOOTPRINT_SCALE`]); pair runs with
//! `SimConfig::baseline().scaled(FOOTPRINT_SCALE)` so cache/TLB pressure
//! ratios are preserved.
//!
//! # Examples
//!
//! ```
//! use mcm_workloads::suite;
//! use mcm_sim::Workload;
//!
//! let all = suite::all();
//! assert_eq!(all.len(), 15);
//! let ste = suite::by_name("STE").expect("exists");
//! assert!(!ste.allocs().is_empty());
//! ```

#![deny(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod builder;
mod pattern;
pub mod suite;

pub use builder::{KernelSpec, Part, SyntheticWorkload, WorkloadBuilder};
pub use pattern::Pattern;

/// Footprints in this crate are `1/FOOTPRINT_SCALE` of the paper's inputs;
/// use `SimConfig::scaled(FOOTPRINT_SCALE)` to shrink capacity-like machine
/// resources by the same factor.
pub const FOOTPRINT_SCALE: u64 = 8;
