//! The 15-workload evaluation suite (paper Table 2) plus the Fig. 20
//! kernel-reuse GEMM scenario.
//!
//! Footprints are 1/8 of the paper's inputs
//! ([`FOOTPRINT_SCALE`](crate::FOOTPRINT_SCALE)); threadblock counts are
//! scaled to keep the 256-SM machine saturated. Each structure's pattern
//! encodes the chiplet-locality period that drives its page-size
//! preference:
//!
//! * `Sliced { period: p }` → per-chiplet locality groups of `p / 4` — the
//!   left-hand workloads of Fig. 6 (STE/LPS ≈ 256KB groups, 3DC ≈ 64KB);
//! * `Sliced { period: 0 }` → block-partitioned, huge groups — the
//!   right-hand, 2MB-friendly workloads (2DC, FDT, BLK, DWT, LUD, GEMM
//!   A/C);
//! * `Uniform` → globally shared (GEMM matrix B; 100% chiplet-locality by
//!   the paper's §3.4 convention, inherently remote at any size);
//! * `Irregular` → graph codes with partial locality (BFS, SSSP, PAF, SC).

use crate::builder::{KernelSpec, Part, SyntheticWorkload, WorkloadBuilder};
use crate::pattern::Pattern;

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

fn sliced(period: u64, halo: f64) -> Pattern {
    Pattern::Sliced { period, halo }
}

fn part(alloc: usize, weight: f64, pattern: Pattern) -> Part {
    Part::new(alloc, weight, pattern)
}

/// `stencil` (Parboil). Paper: 128MB, 1024 TBs, best at ~256KB pages.
pub fn ste() -> SyntheticWorkload {
    WorkloadBuilder::new("STE")
        .alloc("grid-in", 32 * MB)
        .alloc("grid-out", 32 * MB)
        .kernel(KernelSpec {
            num_tbs: 512,
            warps_per_tb: 4,
            insts_per_mem: 4,
            line_reuse: 16,
            unique_lines: 288,
            passes: 2,
            parts: vec![
                part(0, 0.55, sliced(MB, 0.05)),
                part(1, 0.45, sliced(MB, 0.0)),
            ],
        })
        .build()
}

/// `3d convolution` (Polybench). Paper: 512MB, 256 TBs, prefers 64KB.
pub fn threedc() -> SyntheticWorkload {
    WorkloadBuilder::new("3DC")
        .alloc("vol-in", 48 * MB)
        .alloc("vol-out", 16 * MB)
        .kernel(KernelSpec {
            num_tbs: 256,
            warps_per_tb: 4,
            insts_per_mem: 4,
            line_reuse: 16,
            unique_lines: 640,
            passes: 1,
            parts: vec![
                part(0, 0.6, sliced(256 * KB, 0.06)),
                part(1, 0.4, sliced(256 * KB, 0.0)),
            ],
        })
        .build()
}

/// `laplace3d`. Paper: 1GB, 2048 TBs, best at ~256KB.
pub fn lps() -> SyntheticWorkload {
    WorkloadBuilder::new("LPS")
        .alloc("u-in", 64 * MB)
        .alloc("u-out", 64 * MB)
        .kernel(KernelSpec {
            num_tbs: 512,
            warps_per_tb: 4,
            insts_per_mem: 4,
            line_reuse: 16,
            unique_lines: 512,
            passes: 1,
            parts: vec![
                part(0, 0.5, sliced(MB, 0.04)),
                part(1, 0.5, sliced(MB, 0.0)),
            ],
        })
        .build()
}

/// `pathfinder` (Rodinia). Paper: 1.87GB, best at 128KB despite huge input.
pub fn paf() -> SyntheticWorkload {
    WorkloadBuilder::new("PAF")
        .alloc("wall", 128 * MB)
        .alloc("src-row", 8 * MB)
        .alloc("result", 8 * MB)
        .kernel(KernelSpec {
            num_tbs: 512,
            warps_per_tb: 4,
            insts_per_mem: 4,
            line_reuse: 8,
            unique_lines: 832,
            passes: 1,
            parts: vec![
                part(
                    0,
                    0.7,
                    Pattern::Irregular {
                        period: 512 * KB,
                        locality: 0.92,
                        spread: 64 * KB,
                    },
                ),
                part(1, 0.15, sliced(512 * KB, 0.0)),
                part(2, 0.15, sliced(512 * KB, 0.0)),
            ],
        })
        .build()
}

/// `streamcluster` (Rodinia). Paper: 2.02GB, 256 TBs, memory-bound, best
/// at ~128KB.
pub fn sc() -> SyntheticWorkload {
    WorkloadBuilder::new("SC")
        .alloc("points", 128 * MB)
        .alloc("centers", 8 * MB)
        .alloc("assign", 8 * MB)
        .kernel(KernelSpec {
            num_tbs: 256,
            warps_per_tb: 4,
            insts_per_mem: 2,
            line_reuse: 4,
            unique_lines: 896,
            passes: 1,
            parts: vec![
                part(
                    0,
                    0.75,
                    Pattern::Irregular {
                        period: 512 * KB,
                        locality: 0.88,
                        spread: 128 * KB,
                    },
                ),
                part(1, 0.15, Pattern::SharedSweep),
                part(2, 0.10, sliced(512 * KB, 0.0)),
            ],
        })
        .build()
}

/// `breadth-first-search` (LonestarGPU). Mixed preferences per structure
/// (Table 4: 2MB / 2MB / 64KB).
pub fn bfs() -> SyntheticWorkload {
    WorkloadBuilder::new("BFS")
        .alloc("edges", 32 * MB)
        .alloc("nodes", 16 * MB)
        .alloc("frontier", 8 * MB)
        .kernel(KernelSpec {
            num_tbs: 16384,
            warps_per_tb: 16,
            insts_per_mem: 4,
            line_reuse: 8,
            unique_lines: 8,
            passes: 2,
            parts: vec![
                part(
                    0,
                    0.5,
                    Pattern::Irregular {
                        period: 0,
                        locality: 0.75,
                        spread: 0,
                    },
                ),
                part(1, 0.25, sliced(0, 0.0)),
                part(2, 0.25, sliced(256 * KB, 0.0)),
            ],
        })
        .build()
}

/// `2d convolution` (Polybench). Regular, 2MB-friendly.
pub fn twodc() -> SyntheticWorkload {
    WorkloadBuilder::new("2DC")
        .alloc("img-in", 64 * MB)
        .alloc("img-out", 64 * MB)
        .kernel(KernelSpec {
            num_tbs: 8192,
            warps_per_tb: 16,
            insts_per_mem: 4,
            line_reuse: 32,
            unique_lines: 32,
            passes: 2,
            parts: vec![
                part(
                    0,
                    0.55,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
                part(
                    1,
                    0.45,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
            ],
        })
        .build()
}

/// `fdtd2d` (Polybench). Large, regular, 2MB-friendly.
pub fn fdt() -> SyntheticWorkload {
    WorkloadBuilder::new("FDT")
        .alloc("ex", 128 * MB)
        .alloc("ey", 128 * MB)
        .alloc("hz", 128 * MB)
        .kernel(KernelSpec {
            num_tbs: 8192,
            warps_per_tb: 16,
            insts_per_mem: 3,
            line_reuse: 16,
            unique_lines: 36,
            passes: 2,
            parts: vec![
                part(
                    0,
                    0.4,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
                part(
                    1,
                    0.3,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
                part(
                    2,
                    0.3,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
            ],
        })
        .build()
}

/// `blackscholes` (CUDA SDK). Small structures, regular, prefers 2MB.
pub fn blk() -> SyntheticWorkload {
    WorkloadBuilder::new("BLK")
        .alloc("price", 16 * MB)
        .alloc("strike", 16 * MB)
        .alloc("maturity", 16 * MB)
        .alloc("call", 16 * MB)
        .alloc("put", 16 * MB)
        .kernel(KernelSpec {
            num_tbs: 8192,
            warps_per_tb: 16,
            insts_per_mem: 5,
            line_reuse: 8,
            unique_lines: 10,
            passes: 2,
            parts: (0..5).map(|i| part(i, 0.2, sliced(0, 0.0))).collect(),
        })
        .build()
}

/// `single-source shortest path` (Pannotia). Scattered accesses with high
/// inherent remote ratio — flat across page sizes, so larger pages win.
pub fn sssp() -> SyntheticWorkload {
    WorkloadBuilder::new("SSSP")
        .alloc("edges", 160 * MB)
        .alloc("nodes", 32 * MB)
        .alloc("dist", 32 * MB)
        .kernel(KernelSpec {
            num_tbs: 32768,
            warps_per_tb: 16,
            insts_per_mem: 3,
            line_reuse: 4,
            unique_lines: 8,
            passes: 1,
            parts: vec![
                part(
                    0,
                    0.55,
                    Pattern::Irregular {
                        period: 0,
                        locality: 0.55,
                        spread: 0,
                    },
                ),
                part(
                    1,
                    0.25,
                    Pattern::Irregular {
                        period: 0,
                        locality: 0.6,
                        spread: 0,
                    },
                ),
                part(2, 0.2, sliced(0, 0.0)),
            ],
        })
        .build()
}

/// `2d dwt` (Rodinia). Regular transform, 2MB-friendly.
pub fn dwt() -> SyntheticWorkload {
    WorkloadBuilder::new("DWT")
        .alloc("img", 64 * MB)
        .alloc("coeffs", 64 * MB)
        .kernel(KernelSpec {
            num_tbs: 8192,
            warps_per_tb: 16,
            insts_per_mem: 4,
            line_reuse: 16,
            unique_lines: 32,
            passes: 2,
            parts: vec![
                part(
                    0,
                    0.5,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
                part(
                    1,
                    0.5,
                    Pattern::Tiled2D {
                        row_bytes: 64 * KB,
                        tile_rows: 8,
                    },
                ),
            ],
        })
        .build()
}

/// `lud` (Rodinia). One huge matrix swept sparsely: PMM never fills whole
/// VA blocks, forcing CLAP's OLP fallback (which still reaches 2MB).
pub fn lud() -> SyntheticWorkload {
    WorkloadBuilder::new("LUD")
        .alloc("matrix", 512 * MB)
        .kernel(KernelSpec {
            num_tbs: 256,
            warps_per_tb: 4,
            insts_per_mem: 8,
            line_reuse: 32,
            unique_lines: 96,
            passes: 1,
            parts: vec![part(0, 1.0, Pattern::SparseStrided { stride_pages: 3 })],
        })
        .build()
}

fn gemm(
    name: &str,
    a_mb: u64,
    b_mb: u64,
    c_mb: u64,
    num_tbs: u32,
    insts_per_mem: u32,
    a_pattern: Pattern,
) -> SyntheticWorkload {
    WorkloadBuilder::new(name)
        .alloc("matrix-A", a_mb * MB)
        .alloc("matrix-B", b_mb * MB)
        .alloc("matrix-C", c_mb * MB)
        .kernel(KernelSpec {
            num_tbs,
            warps_per_tb: 4,
            insts_per_mem,
            line_reuse: 16,
            unique_lines: 64,
            passes: 3,
            parts: vec![
                part(0, 0.3, a_pattern),
                part(1, 0.4, Pattern::SharedSweep),
                part(2, 0.3, sliced(0, 0.0)),
            ],
        })
        .build()
}

/// GEMM with ViT-FC shapes. Matrix A is small and touched by several
/// chiplets per VA block (Table 4: A 64KB via OLP, B/C 2MB).
pub fn vit() -> SyntheticWorkload {
    gemm("ViT", 4, 16, 16, 512, 8, sliced(256 * KB, 0.0))
}

/// GEMM with ResNet50-FC shapes (Table 4: all 2MB).
pub fn res50() -> SyntheticWorkload {
    gemm("RES50", 16, 16, 32, 512, 8, sliced(0, 0.0))
}

/// GEMM with GPT3-FC shapes: a large partitioned A, shared B (Table 4: all
/// 2MB).
pub fn gpt3() -> SyntheticWorkload {
    gemm("GPT3", 288, 16, 8, 1024, 10, sliced(0, 0.0))
}

/// The Fig. 20 scenario: GEMM whose output `C*` is reused by a second
/// kernel with a different pattern — only the first quarter is read, and
/// it is re-partitioned across chiplets, invalidating kernel 0's placement.
pub fn gemm_reuse() -> SyntheticWorkload {
    WorkloadBuilder::new("GEMM-reuse")
        .alloc("matrix-A", 16 * MB)
        .alloc("matrix-B", 8 * MB)
        .alloc("matrix-Cstar", 32 * MB)
        .alloc("matrix-B2", 8 * MB)
        .alloc("matrix-D", 16 * MB)
        .kernel(KernelSpec {
            num_tbs: 512,
            warps_per_tb: 4,
            insts_per_mem: 8,
            line_reuse: 16,
            unique_lines: 64,
            passes: 3,
            parts: vec![
                part(0, 0.3, sliced(0, 0.0)),
                part(1, 0.4, Pattern::SharedSweep),
                part(2, 0.3, sliced(0, 0.0)),
            ],
        })
        .kernel(KernelSpec {
            num_tbs: 512,
            warps_per_tb: 4,
            insts_per_mem: 8,
            line_reuse: 16,
            unique_lines: 64,
            passes: 3,
            parts: vec![
                // C* quarter, re-partitioned: kernel-0 placement is wrong.
                Part::new(2, 0.35, sliced(0, 0.0)).with_window(0, 8 * MB),
                part(3, 0.3, Pattern::SharedSweep),
                part(4, 0.35, sliced(0, 0.0)),
            ],
        })
        .build()
}

/// Every suite workload, in Table 2 order.
pub fn all() -> Vec<SyntheticWorkload> {
    vec![
        ste(),
        threedc(),
        lps(),
        paf(),
        sc(),
        bfs(),
        twodc(),
        fdt(),
        blk(),
        sssp(),
        dwt(),
        lud(),
        vit(),
        res50(),
        gpt3(),
    ]
}

/// The names of [`all`] workloads, in order.
pub const NAMES: [&str; 15] = [
    "STE", "3DC", "LPS", "PAF", "SC", "BFS", "2DC", "FDT", "BLK", "SSSP", "DWT", "LUD", "ViT",
    "RES50", "GPT3",
];

/// Looks a workload up by its Table 2 abbreviation (case-insensitive).
pub fn by_name(name: &str) -> Option<SyntheticWorkload> {
    let idx = NAMES.iter().position(|n| n.eq_ignore_ascii_case(name))?;
    Some(all().swap_remove(idx))
}

/// The subset used by the 8-chiplet scaling study (Fig. 22): everything
/// except 3DC and SC, whose launches are too small to fill 8 chiplets.
pub fn eight_chiplet_subset() -> Vec<SyntheticWorkload> {
    all()
        .into_iter()
        .filter(|w| {
            use mcm_sim::Workload;
            w.name() != "3DC" && w.name() != "SC"
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sim::Workload;

    #[test]
    fn suite_matches_names() {
        let ws = all();
        assert_eq!(ws.len(), NAMES.len());
        for (w, n) in ws.iter().zip(NAMES) {
            assert_eq!(w.name(), n);
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("ste").is_some());
        assert!(by_name("GPT3").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_generates_valid_streams() {
        use mcm_types::{TbId, WarpId};
        for w in all() {
            let kd = w.kernel(0);
            assert!(kd.num_tbs >= 256, "{}: too few TBs", w.name());
            let s = w.warp_accesses(0, TbId::new(0), WarpId::new(0));
            assert!(!s.is_empty(), "{}: empty stream", w.name());
            for va in &s {
                assert!(
                    w.allocs().iter().any(|a| a.contains(*va)),
                    "{}: {va} out of bounds",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn gemm_reuse_has_two_kernels_with_window() {
        let w = gemm_reuse();
        assert_eq!(w.num_kernels(), 2);
        use mcm_types::{TbId, WarpId};
        let base = w.allocs()[2].base;
        let quarter = 8 * MB;
        // Kernel 1 touches C* only in its first quarter.
        for tb in [0u32, 255, 511] {
            for va in w.warp_accesses(1, TbId::new(tb), WarpId::new(0)) {
                if w.allocs()[2].contains(va) {
                    assert!(va.distance_from(base) < quarter);
                }
            }
        }
    }

    #[test]
    fn eight_chiplet_subset_drops_small_launches() {
        let sub = eight_chiplet_subset();
        assert_eq!(sub.len(), 13);
        assert!(sub.iter().all(|w| w.name() != "3DC" && w.name() != "SC"));
    }
}
