//! Assembling synthetic workloads from allocations, kernels, and patterns.

use mcm_sim::{AllocInfo, KernelDesc, StaticHint, Workload};
use mcm_types::{AllocId, TbId, VirtAddr, WarpId, VA_BLOCK_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pattern::{Pattern, LINE};

/// One structure's role in one kernel: which allocation, what share of the
/// kernel's accesses, with what pattern, over which window of the
/// structure.
#[derive(Clone, Debug)]
pub struct Part {
    /// Index into the workload's allocation list.
    pub alloc: usize,
    /// Fraction of the kernel's memory instructions hitting this part.
    pub weight: f64,
    /// Access pattern.
    pub pattern: Pattern,
    /// Optional `(offset, len)` window restricting accesses to a sub-range
    /// of the allocation (e.g. "only one quarter of C* is reused", §5.2).
    pub window: Option<(u64, u64)>,
}

impl Part {
    /// A part covering the whole allocation.
    pub fn new(alloc: usize, weight: f64, pattern: Pattern) -> Self {
        Part {
            alloc,
            weight,
            pattern,
            window: None,
        }
    }

    /// Restricts the part to `(offset, len)` within the allocation.
    pub fn with_window(mut self, offset: u64, len: u64) -> Self {
        self.window = Some((offset, len));
        self
    }
}

/// Shape of one kernel of a synthetic workload.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Threadblocks launched.
    pub num_tbs: u32,
    /// Warps per threadblock issuing memory traffic.
    pub warps_per_tb: u32,
    /// Warp instructions per memory instruction (arithmetic intensity).
    pub insts_per_mem: u32,
    /// Memory instructions per generated line (intra-line reuse; see
    /// `mcm_sim::KernelDesc::line_reuse`).
    pub line_reuse: u32,
    /// Unique line addresses per warp (footprint knob).
    pub unique_lines: usize,
    /// Times each warp revisits its unique lines (reuse knob).
    pub passes: usize,
    /// The structures this kernel touches.
    pub parts: Vec<Part>,
}

/// A fully assembled synthetic workload.
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    name: String,
    seed: u64,
    allocs: Vec<AllocInfo>,
    kernels: Vec<KernelSpec>,
}

/// Builder for [`SyntheticWorkload`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use mcm_workloads::{WorkloadBuilder, KernelSpec, Part, Pattern};
/// use mcm_sim::Workload;
///
/// let w = WorkloadBuilder::new("toy")
///     .alloc("in", 8 << 20)
///     .alloc("out", 8 << 20)
///     .kernel(KernelSpec {
///         num_tbs: 64,
///         warps_per_tb: 4,
///         insts_per_mem: 4,
///         line_reuse: 1,
///         unique_lines: 32,
///         passes: 2,
///         parts: vec![
///             Part::new(0, 0.5, Pattern::Sliced { period: 1 << 20, halo: 0.0 }),
///             Part::new(1, 0.5, Pattern::Sliced { period: 0, halo: 0.0 }),
///         ],
///     })
///     .build();
/// assert_eq!(w.allocs().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    name: String,
    seed: u64,
    allocs: Vec<(String, u64)>,
    kernels: Vec<KernelSpec>,
}

impl WorkloadBuilder {
    /// Starts a workload named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            seed: 0xC1A9,
            allocs: Vec::new(),
            kernels: Vec::new(),
        }
    }

    /// Sets the deterministic seed (default is fixed; change only to study
    /// generator variance).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares a data structure of `bytes` (rounded up to a whole number
    /// of 2MB VA blocks, as GPU drivers align large allocations).
    pub fn alloc(mut self, name: impl Into<String>, bytes: u64) -> Self {
        self.allocs.push((name.into(), bytes));
        self
    }

    /// Appends a kernel.
    ///
    /// # Panics
    ///
    /// Panics if a part references an undeclared allocation or weights are
    /// all zero.
    pub fn kernel(mut self, spec: KernelSpec) -> Self {
        assert!(
            spec.parts.iter().all(|p| p.alloc < self.allocs.len()),
            "kernel part references undeclared allocation"
        );
        assert!(
            spec.parts.iter().map(|p| p.weight).sum::<f64>() > 0.0,
            "kernel needs positive total weight"
        );
        self.kernels.push(spec);
        self
    }

    /// Finalises the workload, laying allocations out at VA-block-aligned,
    /// well-separated bases and deriving each structure's static hint from
    /// its dominant pattern.
    ///
    /// # Panics
    ///
    /// Panics if no kernel was added.
    pub fn build(self) -> SyntheticWorkload {
        assert!(!self.kernels.is_empty(), "a workload needs >= 1 kernel");
        let mut base = VA_BLOCK_BYTES; // leave page 0 unmapped
        let mut allocs = Vec::new();
        for (i, (name, bytes)) in self.allocs.iter().enumerate() {
            let rounded = bytes.div_ceil(VA_BLOCK_BYTES) * VA_BLOCK_BYTES;
            let hint = self
                .kernels
                .iter()
                .flat_map(|k| &k.parts)
                .filter(|p| p.alloc == i)
                .max_by(|a, b| a.weight.total_cmp(&b.weight))
                .map(|p| p.pattern.static_hint())
                .unwrap_or(StaticHint::Irregular);
            allocs.push(AllocInfo {
                id: AllocId::new(i as u16),
                base: VirtAddr::new(base),
                bytes: rounded,
                name: name.clone(),
                hint,
            });
            // Separate structures by a guard block so they never share a
            // VA block.
            base += rounded + VA_BLOCK_BYTES;
        }
        SyntheticWorkload {
            name: self.name,
            seed: self.seed,
            allocs,
            kernels: self.kernels,
        }
    }
}

impl SyntheticWorkload {
    /// The kernel specifications (for harnesses that scale workloads).
    pub fn kernels(&self) -> &[KernelSpec] {
        &self.kernels
    }

    /// Returns a copy with every kernel's `num_tbs` multiplied by `num`
    /// and divided by `den` (at least 1). Used to right-size launches for
    /// different chiplet counts.
    pub fn with_tb_scale(mut self, num: u32, den: u32) -> Self {
        for k in &mut self.kernels {
            k.num_tbs = (k.num_tbs * num / den).max(1);
        }
        self
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn allocs(&self) -> &[AllocInfo] {
        &self.allocs
    }

    fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    fn kernel(&self, k: usize) -> KernelDesc {
        let s = &self.kernels[k];
        KernelDesc {
            num_tbs: s.num_tbs,
            warps_per_tb: s.warps_per_tb,
            insts_per_mem: s.insts_per_mem,
            line_reuse: s.line_reuse,
        }
    }

    fn warp_accesses(&self, k: usize, tb: TbId, warp: WarpId) -> Vec<VirtAddr> {
        let mut out = Vec::new();
        self.warp_accesses_into(k, tb, warp, &mut out);
        out
    }

    fn warp_accesses_into(&self, k: usize, tb: TbId, warp: WarpId, out: &mut Vec<VirtAddr>) {
        let spec = &self.kernels[k];
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (tb.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (warp.index() as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
        );
        let total_weight: f64 = spec.parts.iter().map(|p| p.weight).sum();

        // Build each part's unique working set, then interleave passes.
        let mut uniques: Vec<Vec<VirtAddr>> = Vec::with_capacity(spec.parts.len());
        for part in &spec.parts {
            let share = ((part.weight / total_weight) * spec.unique_lines as f64).round() as usize;
            let n = share.max(1);
            let a = &self.allocs[part.alloc];
            let (w_off, w_len) = part.window.unwrap_or((0, a.bytes));
            let w_len = w_len.min(a.bytes - w_off).max(LINE);
            let mut v = Vec::with_capacity(n);
            for kk in 0..part.pattern.cycle_len(n) {
                let off = part.pattern.offset(
                    kk,
                    n,
                    tb,
                    warp,
                    spec.num_tbs,
                    spec.warps_per_tb,
                    w_len,
                    &mut rng,
                );
                v.push(a.base + w_off + off);
            }
            uniques.push(v);
        }

        // Interleave parts proportionally so structures mix in time, and
        // repeat the whole sequence `passes` times for reuse.
        let mut one_pass = Vec::with_capacity(spec.unique_lines);
        let mut cursors = vec![0usize; uniques.len()];
        let mut exhausted = 0;
        while exhausted < uniques.len() {
            exhausted = 0;
            for (i, u) in uniques.iter().enumerate() {
                if cursors[i] < u.len() {
                    // Emit a small burst per structure for spatial locality.
                    let burst = 4.min(u.len() - cursors[i]);
                    one_pass.extend_from_slice(&u[cursors[i]..cursors[i] + burst]);
                    cursors[i] += burst;
                } else {
                    exhausted += 1;
                }
            }
        }
        out.clear();
        out.reserve(one_pass.len() * spec.passes);
        for pass in 0..spec.passes {
            if pass % 2 == 1 {
                // Alternate direction to vary reuse distance slightly.
                out.extend(one_pass.iter().rev().copied());
            } else {
                out.extend(one_pass.iter().copied());
            }
        }
        // A pinch of shuffling within small windows keeps streams from
        // being perfectly in lockstep across warps.
        if out.len() > 8 {
            let n = out.len();
            for i in (0..n - 4).step_by(8) {
                let j = i + rng.gen_range(0..4);
                out.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SyntheticWorkload {
        WorkloadBuilder::new("toy")
            .alloc("a", 8 << 20)
            .alloc("b", 4 << 20)
            .kernel(KernelSpec {
                num_tbs: 32,
                warps_per_tb: 2,
                insts_per_mem: 4,
                line_reuse: 1,
                unique_lines: 24,
                passes: 2,
                parts: vec![
                    Part::new(
                        0,
                        0.75,
                        Pattern::Sliced {
                            period: 1 << 20,
                            halo: 0.0,
                        },
                    ),
                    Part::new(1, 0.25, Pattern::Uniform),
                ],
            })
            .build()
    }

    #[test]
    fn layout_is_block_aligned_and_disjoint() {
        let w = toy();
        let a = &w.allocs()[0];
        let b = &w.allocs()[1];
        assert_eq!(a.base.raw() % VA_BLOCK_BYTES, 0);
        assert_eq!(b.base.raw() % VA_BLOCK_BYTES, 0);
        assert!(b.base.raw() >= a.base.raw() + a.bytes + VA_BLOCK_BYTES);
        assert_eq!(
            a.hint,
            StaticHint::Partitioned {
                period_bytes: 1 << 20
            }
        );
        assert_eq!(b.hint, StaticHint::Shared);
    }

    #[test]
    fn accesses_fall_inside_their_allocations() {
        let w = toy();
        for tb in [0u32, 15, 31] {
            for warp in 0..2 {
                for va in w.warp_accesses(0, TbId::new(tb), WarpId::new(warp)) {
                    assert!(
                        w.allocs().iter().any(|a| a.contains(va)),
                        "{va} outside all allocations"
                    );
                }
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let w = toy();
        let a = w.warp_accesses(0, TbId::new(3), WarpId::new(1));
        let b = w.warp_accesses(0, TbId::new(3), WarpId::new(1));
        assert_eq!(a, b);
        let c = w.warp_accesses(0, TbId::new(4), WarpId::new(1));
        assert_ne!(a, c);
    }

    #[test]
    fn passes_multiply_stream_length_with_same_uniques() {
        let w = toy();
        let s = w.warp_accesses(0, TbId::new(0), WarpId::new(0));
        let uniques: std::collections::HashSet<_> = s.iter().collect();
        assert!(s.len() >= 2 * uniques.len(), "passes should repeat lines");
    }

    #[test]
    fn window_restricts_range() {
        let w = WorkloadBuilder::new("win")
            .alloc("a", 16 << 20)
            .kernel(KernelSpec {
                num_tbs: 8,
                warps_per_tb: 2,
                insts_per_mem: 4,
                line_reuse: 1,
                unique_lines: 16,
                passes: 1,
                parts: vec![Part::new(0, 1.0, Pattern::Uniform).with_window(0, 4 << 20)],
            })
            .build();
        let base = w.allocs()[0].base;
        for va in w.warp_accesses(0, TbId::new(0), WarpId::new(0)) {
            assert!(va.distance_from(base) < (4 << 20));
        }
    }

    #[test]
    fn tb_scale_clamps_to_one() {
        let w = toy().with_tb_scale(1, 64);
        assert_eq!(w.kernel(0).num_tbs, 1);
        let w2 = toy().with_tb_scale(2, 1);
        assert_eq!(w2.kernel(0).num_tbs, 64);
    }

    #[test]
    #[should_panic(expected = "undeclared allocation")]
    fn bad_part_index_panics() {
        let _ = WorkloadBuilder::new("bad")
            .alloc("a", 1 << 20)
            .kernel(KernelSpec {
                num_tbs: 1,
                warps_per_tb: 1,
                insts_per_mem: 1,
                line_reuse: 1,
                unique_lines: 1,
                passes: 1,
                parts: vec![Part::new(1, 1.0, Pattern::Uniform)],
            });
    }
}
