//! Offline vendored stub of the `proptest` 1.x API subset this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal property-testing engine: seeded random generation of inputs
//! from [`Strategy`] values, the `proptest!`/`prop_assert!`/`prop_oneof!`
//! macro family, and [`collection::vec`]. There is **no shrinking** — a
//! failing case reports the generated inputs (via `Debug` where available
//! in the assertion message) and the case number, which together with the
//! fixed seed makes failures reproducible.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Test-runner types: configuration and failure reporting.
pub mod test_runner {
    use std::fmt;

    /// Number of cases to run per property (stub of proptest's config).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed property with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A fresh generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range<T: SampleUniform>(&mut self, lo: T, hi: T) -> T {
        self.0.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53-bit mantissa resolution.
        self.range(0u64, 1 << 53) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values (stub of proptest's `Strategy`; no
/// shrinking, so a strategy is just a seeded generator).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range(0usize, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.start, self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    // Avoid overflow on the half-open conversion; the
                    // missing top value is immaterial for tests.
                    rng.range(lo, hi)
                } else {
                    rng.range(lo, hi + 1)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: fixed or ranged.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Stable per-test seed so failures reproduce across runs (FNV-1a of the
/// test name mixed with the case index at run time).
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

#[doc(hidden)]
pub fn __format_failure(name: &str, case: u32, err: &test_runner::TestCaseError) -> String {
    format!(
        "proptest '{name}' failed at case {case} (seed {}): {err}",
        seed_for(name, case)
    )
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng =
                        $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{}", $crate::__format_failure(stringify!($name), case, &e));
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Asserts two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = crate::Strategy::generate(&(2u32..=5), &mut rng);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u8..4, 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
            let w = crate::Strategy::generate(&crate::collection::vec(0u8..4, 5usize), &mut rng);
            assert_eq!(w.len(), 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..100, v in crate::collection::vec(0u32..10, 1..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0u64..8).prop_map(|x| x * 2),
            (0u64..8).prop_map(|x| x * 2 + 1),
        ]) {
            prop_assert!(op < 16);
        }
    }
}
