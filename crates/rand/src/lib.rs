//! Offline vendored stub of the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the handful of
//! `rand` items the workload generators rely on: [`rngs::StdRng`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`SeedableRng::seed_from_u64`].
//!
//! The generator is SplitMix64-seeded xoshiro256++ — a high-quality,
//! well-known PRNG. Streams are *not* bit-compatible with upstream
//! `rand::rngs::StdRng` (ChaCha12), but every consumer in this workspace
//! only requires determinism per seed, which this provides.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::ops::Range;

/// Random number generators (stub of `rand::rngs`).
pub mod rngs {
    /// A seedable, deterministic generator (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seeding interface (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`.
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift range reduction; bias is negligible for
                // the simulator's span sizes (all far below 2^64).
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Core sampling interface (stub of `rand::Rng`).
pub trait Rng {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 16, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..4);
            assert!(w < 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
