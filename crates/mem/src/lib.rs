//! Block-based GPU physical-memory management (CLAP paper §4.1, §4.5, §4.7).
//!
//! The memory manager partitions physical memory into 2MB **PF blocks**, each
//! owned by one chiplet (see [`mcm_types::PhysLayout`]). A PF block is split
//! into frames of a single size on demand, and the resulting frames feed
//! per-`(chiplet, size, allocation)` free lists, so one PF block is only ever
//! used by one data structure at one frame size — the property that lets the
//! whole block be reclaimed without external fragmentation when the
//! structure is freed (§4.7).
//!
//! The crate also provides:
//!
//! * [`ReservationTable`] — physical-frame reservations for demand paging
//!   with promotion (paper Fig. 5) and opportunistic large paging (§4.2);
//! * [`VaBlockMap`] — the per-2MB-VA-block page-size assignment that makes
//!   multiple page sizes coexist in one address space (§4.1).
//!
//! # Examples
//!
//! ```
//! use mcm_mem::FrameAllocator;
//! use mcm_types::{AllocId, ChipletId, PageSize, PhysLayout};
//!
//! let mut alloc = FrameAllocator::new(PhysLayout::new(4), 16);
//! let frame = alloc.alloc_frame(ChipletId::new(2), PageSize::Size64K, AllocId::new(0))?;
//! assert_eq!(alloc.layout().chiplet_of(frame).index(), 2);
//! alloc.free_frame(frame, PageSize::Size64K, AllocId::new(0))?;
//! # Ok::<(), mcm_mem::MemError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod allocator;
mod error;
mod reservation;
mod va_blocks;

pub use allocator::{AllocatorStats, FrameAllocator};
pub use error::MemError;
pub use reservation::{Reservation, ReservationTable};
pub use va_blocks::{VaBlockInfo, VaBlockMap};
