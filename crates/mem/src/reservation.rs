//! Physical-frame reservations for demand paging (paper Fig. 5, §4.2, §4.5).
//!
//! A reservation pins a physical frame of some size to a virtual region of
//! the same size; 64KB subpages are then *populated* into the frame on
//! demand, preserving the virtual-to-physical offset so that partially
//! populated regions still coalesce in the TLB (paper §4.6).

use std::collections::HashMap;

use mcm_types::{ChipletId, PageSize, PhysAddr, VirtAddr, BASE_PAGE_BYTES};

use crate::MemError;

/// One outstanding physical-frame reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Base virtual address of the reserved region (size-aligned).
    pub va: VirtAddr,
    /// Base physical address of the reserved frame.
    pub pa: PhysAddr,
    /// Region size (64KB..2MB).
    pub size: PageSize,
    /// Chiplet owning the frame.
    pub chiplet: ChipletId,
    /// Bit `i` set: the `i`-th 64KB subpage is populated (mapped).
    pub populated: u32,
}

impl Reservation {
    /// Number of 64KB subpages the region spans.
    pub fn subpages(&self) -> u32 {
        (self.size.bytes() / BASE_PAGE_BYTES) as u32
    }

    /// Number of populated 64KB subpages.
    pub fn populated_count(&self) -> u32 {
        self.populated.count_ones()
    }

    /// `true` once every subpage is populated — the region is eligible for
    /// promotion to a (real or coalesced) large page.
    pub fn is_full(&self) -> bool {
        self.populated_count() == self.subpages()
    }

    /// Physical address backing `va` within this reservation, preserving
    /// the virtual-to-physical offset.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the reserved region.
    pub fn pa_of(&self, va: VirtAddr) -> PhysAddr {
        let off = va.distance_from(self.va);
        assert!(off < self.size.bytes(), "va outside reservation");
        self.pa + off
    }

    /// Populated-subpage mask as booleans (one per 64KB subpage).
    pub fn populated_mask(&self) -> Vec<bool> {
        (0..self.subpages())
            .map(|i| self.populated >> i & 1 == 1)
            .collect()
    }
}

/// Table of outstanding reservations, keyed by region base VA.
///
/// # Examples
///
/// ```
/// use mcm_mem::ReservationTable;
/// use mcm_types::{ChipletId, PageSize, PhysAddr, VirtAddr};
///
/// let mut t = ReservationTable::new();
/// let va = VirtAddr::new(0x40000); // 256KB-aligned
/// t.reserve(va, PhysAddr::new(0x80_0000), PageSize::Size256K, ChipletId::new(0))?;
/// let (pa, full) = t.populate(va + 0x1_0000)?;
/// assert_eq!(pa.raw(), 0x81_0000);
/// assert!(!full);
/// # Ok::<(), mcm_mem::MemError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReservationTable {
    /// Keyed by base-VA page index (va / 64KB) of the region start.
    regions: HashMap<u64, Reservation>,
    /// Index from any covered base-page index to the region start index.
    cover: HashMap<u64, u64>,
}

impl ReservationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outstanding reservations.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` if no reservations are outstanding.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Registers a reservation of `size` at `va` backed by frame `pa`.
    ///
    /// # Errors
    ///
    /// * [`MemError::Misaligned`] if `va` or `pa` is not `size`-aligned.
    /// * [`MemError::AlreadyReserved`] if any part of the region is already
    ///   covered by a reservation.
    pub fn reserve(
        &mut self,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        chiplet: ChipletId,
    ) -> Result<(), MemError> {
        if !va.is_aligned(size.bytes()) {
            return Err(MemError::Misaligned {
                addr: va.raw(),
                align: size.bytes(),
            });
        }
        if !pa.is_aligned(size.bytes()) {
            return Err(MemError::Misaligned {
                addr: pa.raw(),
                align: size.bytes(),
            });
        }
        let start = va.raw() / BASE_PAGE_BYTES;
        let pages = size.bytes() / BASE_PAGE_BYTES;
        if (start..start + pages).any(|p| self.cover.contains_key(&p)) {
            return Err(MemError::AlreadyReserved { va });
        }
        for p in start..start + pages {
            self.cover.insert(p, start);
        }
        self.regions.insert(
            start,
            Reservation {
                va,
                pa,
                size,
                chiplet,
                populated: 0,
            },
        );
        Ok(())
    }

    /// The reservation covering `va`, if any.
    pub fn covering(&self, va: VirtAddr) -> Option<&Reservation> {
        let page = va.raw() / BASE_PAGE_BYTES;
        self.cover.get(&page).map(|s| &self.regions[s])
    }

    /// Marks the 64KB subpage containing `va` populated. Returns the
    /// physical address of the subpage and whether the region is now full
    /// (eligible for promotion).
    ///
    /// Populating an already-populated subpage is a no-op and returns the
    /// same physical address.
    ///
    /// # Errors
    ///
    /// [`MemError::NoReservation`] if no reservation covers `va`.
    pub fn populate(&mut self, va: VirtAddr) -> Result<(PhysAddr, bool), MemError> {
        let page = va.raw() / BASE_PAGE_BYTES;
        let start = *self
            .cover
            .get(&page)
            .ok_or(MemError::NoReservation { va })?;
        let r = self
            .regions
            .get_mut(&start)
            .ok_or(MemError::NoReservation { va })?;
        let sub = (page - start) as u32;
        r.populated |= 1 << sub;
        let pa = r.pa + sub as u64 * BASE_PAGE_BYTES;
        let full = r.is_full();
        Ok((pa, full))
    }

    /// Removes and returns the reservation whose region starts at `va`
    /// (used on promotion, or on OLP release when a different chiplet
    /// touches the block).
    ///
    /// # Errors
    ///
    /// [`MemError::NoReservation`] if no reservation starts at `va`.
    pub fn release(&mut self, va: VirtAddr) -> Result<Reservation, MemError> {
        let start = va.raw() / BASE_PAGE_BYTES;
        let r = self
            .regions
            .remove(&start)
            .ok_or(MemError::NoReservation { va })?;
        let pages = r.size.bytes() / BASE_PAGE_BYTES;
        for p in start..start + pages {
            self.cover.remove(&p);
        }
        Ok(r)
    }

    /// Iterates over outstanding reservations in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Reservation> {
        self.regions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ChipletId = ChipletId::new(0);

    fn table_with_256k() -> (ReservationTable, VirtAddr, PhysAddr) {
        let mut t = ReservationTable::new();
        let va = VirtAddr::new(0x10_0000);
        let pa = PhysAddr::new(0x200_0000);
        t.reserve(va, pa, PageSize::Size256K, C0).unwrap();
        (t, va, pa)
    }

    #[test]
    fn populate_preserves_offset_and_detects_full() {
        let (mut t, va, pa) = table_with_256k();
        let mut full = false;
        for i in 0..4u64 {
            let (p, f) = t.populate(va + i * 65536 + 7).unwrap();
            assert_eq!(p, pa + i * 65536);
            full = f;
        }
        assert!(full);
        assert!(t.covering(va).unwrap().is_full());
    }

    #[test]
    fn repopulating_is_idempotent() {
        let (mut t, va, _) = table_with_256k();
        let (p1, _) = t.populate(va).unwrap();
        let (p2, _) = t.populate(va + 5).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(t.covering(va).unwrap().populated_count(), 1);
    }

    #[test]
    fn overlapping_reservations_are_rejected() {
        let (mut t, va, _) = table_with_256k();
        // Same region.
        assert!(matches!(
            t.reserve(va, PhysAddr::new(0x400_0000), PageSize::Size256K, C0),
            Err(MemError::AlreadyReserved { .. })
        ));
        // A 2MB region covering it (2MB-aligned va 0x0 covers 0x10_0000).
        assert!(matches!(
            t.reserve(
                VirtAddr::new(0),
                PhysAddr::new(0x400_0000),
                PageSize::Size2M,
                C0
            ),
            Err(MemError::AlreadyReserved { .. })
        ));
        // An adjacent region is fine.
        t.reserve(
            va + PageSize::Size256K.bytes(),
            PhysAddr::new(0x400_0000),
            PageSize::Size256K,
            C0,
        )
        .unwrap();
    }

    #[test]
    fn misaligned_reservation_is_rejected() {
        let mut t = ReservationTable::new();
        assert!(matches!(
            t.reserve(
                VirtAddr::new(0x1_0000),
                PhysAddr::new(0),
                PageSize::Size256K,
                C0
            ),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            t.reserve(
                VirtAddr::new(0),
                PhysAddr::new(0x1_0000),
                PageSize::Size256K,
                C0
            ),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn release_returns_state_and_frees_cover() {
        let (mut t, va, pa) = table_with_256k();
        t.populate(va + 65536).unwrap();
        let r = t.release(va).unwrap();
        assert_eq!(r.pa, pa);
        assert_eq!(r.populated_count(), 1);
        assert_eq!(r.populated_mask(), vec![false, true, false, false]);
        assert!(t.is_empty());
        assert!(t.covering(va).is_none());
        // Region can be reserved again.
        t.reserve(va, pa, PageSize::Size256K, C0).unwrap();
    }

    #[test]
    fn populate_without_reservation_errors() {
        let mut t = ReservationTable::new();
        assert!(matches!(
            t.populate(VirtAddr::new(0x123)),
            Err(MemError::NoReservation { .. })
        ));
    }

    #[test]
    fn pa_of_maps_offsets() {
        let (t, va, pa) = table_with_256k();
        let r = *t.covering(va).unwrap();
        assert_eq!(r.pa_of(va + 0x2_1234), pa + 0x2_1234);
        assert_eq!(r.subpages(), 4);
    }
}
