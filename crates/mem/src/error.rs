//! Error type for memory-management operations.

use core::fmt;
use mcm_types::{ChipletId, PageSize, PhysAddr, VirtAddr};

/// Errors returned by the block-based memory manager.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The target chiplet has no free PF block and no free frame of the
    /// requested size. The caller should fall back to another chiplet or
    /// evict (paper §4.7, "Chiplet Memory Exhaustion").
    ChipletExhausted {
        /// The chiplet whose memory is exhausted.
        chiplet: ChipletId,
        /// The frame size that was requested.
        size: PageSize,
    },
    /// A frame was freed that is not currently allocated (double free or
    /// wrong address/size/allocation key).
    NotAllocated {
        /// The frame base address passed to `free_frame`.
        frame: PhysAddr,
    },
    /// An address is not aligned to the required granularity.
    Misaligned {
        /// The offending address value.
        addr: u64,
        /// The required alignment in bytes.
        align: u64,
    },
    /// A reservation already exists for this virtual region.
    AlreadyReserved {
        /// Base virtual address of the region.
        va: VirtAddr,
    },
    /// No reservation exists for this virtual region.
    NoReservation {
        /// Base virtual address of the region.
        va: VirtAddr,
    },
    /// A VA block already has a different page size assigned.
    SizeConflict {
        /// Base virtual address of the VA block.
        va: VirtAddr,
        /// The size already assigned to the block.
        assigned: PageSize,
        /// The size the caller attempted to assign.
        requested: PageSize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::ChipletExhausted { chiplet, size } => {
                write!(f, "no free {size} frame or PF block on {chiplet}")
            }
            MemError::NotAllocated { frame } => {
                write!(f, "frame {frame} is not allocated")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} is not aligned to {align:#x}")
            }
            MemError::AlreadyReserved { va } => {
                write!(f, "virtual region {va} already has a reservation")
            }
            MemError::NoReservation { va } => {
                write!(f, "virtual region {va} has no reservation")
            }
            MemError::SizeConflict {
                va,
                assigned,
                requested,
            } => write!(
                f,
                "VA block {va} already assigned page size {assigned}, cannot assign {requested}"
            ),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::ChipletExhausted {
            chiplet: ChipletId::new(1),
            size: PageSize::Size64K,
        };
        let s = e.to_string();
        assert!(s.contains("chiplet-1"));
        assert!(s.contains("64KB"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
