//! The block-based physical frame allocator (paper §4.1).

use std::collections::{HashMap, VecDeque};

use mcm_types::{AllocId, ChipletId, PageSize, PhysAddr, PhysLayout, VA_BLOCK_BYTES};

use crate::MemError;

/// Key of one free list: frames of one size, on one chiplet, dedicated to
/// one data structure (paper §4.7 keeps a free list per data structure so a
/// PF block is never shared between structures).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ListKey {
    chiplet: ChipletId,
    size: PageSize,
    alloc: AllocId,
}

/// Bookkeeping for one PF block that has been split into frames.
#[derive(Clone, Debug)]
struct BlockState {
    key: ListKey,
    /// Total frames the block was split into.
    total: u32,
    /// Frames currently handed out to the caller.
    allocated: u32,
    /// Bit `i` set means frame `i` of this block is handed out.
    bitmap: Vec<u64>,
}

impl BlockState {
    fn new(key: ListKey, total: u32) -> Self {
        BlockState {
            key,
            total,
            allocated: 0,
            bitmap: vec![0; (total as usize).div_ceil(64)],
        }
    }

    fn is_set(&self, i: u32) -> bool {
        self.bitmap[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    fn set(&mut self, i: u32) {
        self.bitmap[(i / 64) as usize] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: u32) {
        self.bitmap[(i / 64) as usize] &= !(1 << (i % 64));
    }
}

/// Counters exposed by [`FrameAllocator::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// Frames handed out.
    pub allocs: u64,
    /// Frames returned.
    pub frees: u64,
    /// PF blocks split into frames.
    pub block_splits: u64,
    /// PF blocks fully reclaimed.
    pub block_reclaims: u64,
    /// 2MB frames downgraded to 64KB frames (OLP reservation releases).
    pub downgrades: u64,
    /// Allocations that had to fall back to a non-preferred chiplet.
    pub chiplet_fallbacks: u64,
}

/// Block-based physical frame allocator.
///
/// Physical memory is a set of 2MB PF blocks round-robined across chiplets
/// by [`PhysLayout`]. Each chiplet owns `blocks_per_chiplet` blocks. A free
/// PF block is split on demand into frames of a single size for a single
/// data structure, and those frames populate a dedicated free list; when all
/// frames of a block return, the whole block is reclaimed (no external
/// fragmentation across data structures, §4.7).
///
/// # Examples
///
/// ```
/// use mcm_mem::FrameAllocator;
/// use mcm_types::{AllocId, ChipletId, PageSize, PhysLayout};
///
/// let mut a = FrameAllocator::new(PhysLayout::new(4), 4);
/// let c = ChipletId::new(1);
/// let id = AllocId::new(3);
/// let f0 = a.alloc_frame(c, PageSize::Size256K, id)?;
/// let f1 = a.alloc_frame(c, PageSize::Size256K, id)?;
/// // Both frames come from the same PF block, owned by chiplet 1.
/// assert_eq!(a.layout().chiplet_of(f0), c);
/// assert_eq!(f1.distance_from(f0), PageSize::Size256K.bytes());
/// # Ok::<(), mcm_mem::MemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    layout: PhysLayout,
    blocks_per_chiplet: u64,
    /// Per chiplet: free PF block indices (FIFO for determinism).
    free_blocks: Vec<VecDeque<u64>>,
    /// Free frames per (chiplet, size, alloc).
    lists: HashMap<ListKey, Vec<PhysAddr>>,
    /// Split blocks, by PF block index.
    blocks: HashMap<u64, BlockState>,
    stats: AllocatorStats,
    /// Free-list pick window: 1 = LIFO (dense, deterministic); larger
    /// windows pick pseudo-randomly among the last N free frames, modelling
    /// the frame scatter a real driver's allocator produces.
    scatter_window: usize,
    rng_state: u64,
}

impl FrameAllocator {
    /// Creates an allocator with `blocks_per_chiplet` 2MB PF blocks on each
    /// chiplet of `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_chiplet` is zero.
    pub fn new(layout: PhysLayout, blocks_per_chiplet: u64) -> Self {
        assert!(
            blocks_per_chiplet > 0,
            "need at least one block per chiplet"
        );
        let free_blocks = ChipletId::all(layout.num_chiplets())
            .map(|c| {
                (0..blocks_per_chiplet)
                    .map(|n| layout.block_of_chiplet(c, n))
                    .collect()
            })
            .collect();
        FrameAllocator {
            layout,
            blocks_per_chiplet,
            free_blocks,
            lists: HashMap::new(),
            blocks: HashMap::new(),
            stats: AllocatorStats::default(),
            scatter_window: 1,
            rng_state: 0x5EED_CAFE,
        }
    }

    /// Picks frames pseudo-randomly among the last `window` free-list
    /// entries instead of strict LIFO, modelling real-driver frame scatter
    /// (which defeats accidental physical contiguity; CLAP's reservations
    /// are unaffected because a reservation is one contiguous frame).
    pub fn with_scatter(mut self, window: usize) -> Self {
        self.scatter_window = window.max(1);
        self
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, cheap.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The physical layout this allocator manages.
    pub fn layout(&self) -> PhysLayout {
        self.layout
    }

    /// PF blocks each chiplet owns.
    pub fn blocks_per_chiplet(&self) -> u64 {
        self.blocks_per_chiplet
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Free (never split) PF blocks remaining on `chiplet`.
    pub fn free_blocks(&self, chiplet: ChipletId) -> usize {
        self.free_blocks[chiplet.index()].len()
    }

    /// Total PF blocks consumed (split) across all chiplets — the metric of
    /// the paper's fragmentation study (§4.7).
    pub fn blocks_consumed(&self) -> usize {
        self.blocks.len()
    }

    /// The chiplet with the most free PF blocks (paper §4.7 picks the
    /// destination "with the fewest mapped pages" on exhaustion).
    pub fn least_loaded_chiplet(&self) -> ChipletId {
        ChipletId::all(self.layout.num_chiplets())
            .max_by_key(|c| self.free_blocks[c.index()].len())
            .unwrap_or(ChipletId::new(0))
    }

    /// Allocates one frame of `size` on `chiplet` for data structure
    /// `alloc`, splitting a fresh PF block if the dedicated free list is
    /// empty.
    ///
    /// # Errors
    ///
    /// [`MemError::ChipletExhausted`] if the dedicated free list is empty
    /// and the chiplet has no free PF block.
    pub fn alloc_frame(
        &mut self,
        chiplet: ChipletId,
        size: PageSize,
        alloc: AllocId,
    ) -> Result<PhysAddr, MemError> {
        let key = ListKey {
            chiplet,
            size,
            alloc,
        };
        if self.lists.get(&key).is_none_or(Vec::is_empty) {
            self.split_block(key)?;
        }
        let pick = self.next_rand() as usize;
        let frame = match self.lists.get_mut(&key) {
            Some(list) if !list.is_empty() => {
                let w = self.scatter_window.min(list.len()).max(1);
                let idx = list.len() - 1 - (pick % w);
                list.swap_remove(idx)
            }
            // split_block ensures a non-empty list; treat a violation as
            // exhaustion rather than corrupting free-list state.
            _ => return Err(MemError::ChipletExhausted { chiplet, size }),
        };
        let block = self.layout.block_of(frame);
        let state = self
            .blocks
            .get_mut(&block)
            .ok_or(MemError::NotAllocated { frame })?;
        let idx = (frame.offset_in(VA_BLOCK_BYTES) / size.bytes()) as u32;
        debug_assert!(!state.is_set(idx), "frame handed out twice");
        state.set(idx);
        state.allocated += 1;
        self.stats.allocs += 1;
        Ok(frame)
    }

    /// Like [`alloc_frame`](Self::alloc_frame) but falls back to the least
    /// loaded chiplet when `chiplet` is exhausted, mirroring the paper's
    /// exhaustion handling (§4.7). Returns the frame and the chiplet that
    /// actually served it.
    ///
    /// # Errors
    ///
    /// [`MemError::ChipletExhausted`] if every chiplet is exhausted.
    pub fn alloc_frame_or_fallback(
        &mut self,
        chiplet: ChipletId,
        size: PageSize,
        alloc: AllocId,
    ) -> Result<(PhysAddr, ChipletId), MemError> {
        match self.alloc_frame(chiplet, size, alloc) {
            Ok(f) => Ok((f, chiplet)),
            Err(MemError::ChipletExhausted { .. }) => {
                let fallback = self.least_loaded_chiplet();
                let f = self.alloc_frame(fallback, size, alloc)?;
                self.stats.chiplet_fallbacks += 1;
                Ok((f, fallback))
            }
            Err(e) => Err(e),
        }
    }

    /// Returns a frame previously obtained from
    /// [`alloc_frame`](Self::alloc_frame). Reclaims the whole PF block once
    /// its last frame returns.
    ///
    /// # Errors
    ///
    /// * [`MemError::Misaligned`] if `frame` is not `size`-aligned.
    /// * [`MemError::NotAllocated`] if the frame is not currently handed out
    ///   under this `(size, alloc)` key.
    pub fn free_frame(
        &mut self,
        frame: PhysAddr,
        size: PageSize,
        alloc: AllocId,
    ) -> Result<(), MemError> {
        if !frame.is_aligned(size.bytes()) {
            return Err(MemError::Misaligned {
                addr: frame.raw(),
                align: size.bytes(),
            });
        }
        let block = self.layout.block_of(frame);
        let chiplet = self.layout.chiplet_of(frame);
        let key = ListKey {
            chiplet,
            size,
            alloc,
        };
        let state = self
            .blocks
            .get_mut(&block)
            .filter(|s| s.key == key)
            .ok_or(MemError::NotAllocated { frame })?;
        let idx = (frame.offset_in(VA_BLOCK_BYTES) / size.bytes()) as u32;
        debug_assert!(idx < state.total, "frame index within the split block");
        if !state.is_set(idx) {
            return Err(MemError::NotAllocated { frame });
        }
        state.clear(idx);
        state.allocated -= 1;
        self.stats.frees += 1;
        if state.allocated == 0 {
            self.reclaim_block(block);
        } else {
            self.lists.entry(key).or_default().push(frame);
        }
        Ok(())
    }

    /// Downgrades an allocated 2MB frame into 64KB frames: the sub-frames
    /// marked `true` in `used` stay allocated (they hold mapped pages); the
    /// rest go to the structure's 64KB free list for reuse by later demand
    /// mappings. This is the OLP reservation-release path (paper §4.2 ⓒ).
    ///
    /// Returns the number of 64KB frames released to the free list.
    ///
    /// # Errors
    ///
    /// * [`MemError::Misaligned`] if `frame` is not 2MB-aligned.
    /// * [`MemError::NotAllocated`] if `frame` is not an allocated 2MB frame
    ///   of `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `used.len()` is not 32 (the number of 64KB frames in 2MB).
    pub fn downgrade_block(
        &mut self,
        frame: PhysAddr,
        alloc: AllocId,
        used: &[bool],
    ) -> Result<usize, MemError> {
        assert_eq!(used.len(), 32, "a 2MB block holds exactly 32 64KB frames");
        if !frame.is_aligned(PageSize::Size2M.bytes()) {
            return Err(MemError::Misaligned {
                addr: frame.raw(),
                align: PageSize::Size2M.bytes(),
            });
        }
        let block = self.layout.block_of(frame);
        let chiplet = self.layout.chiplet_of(frame);
        let old_key = ListKey {
            chiplet,
            size: PageSize::Size2M,
            alloc,
        };
        match self.blocks.get(&block) {
            Some(s) if s.key == old_key && s.allocated == 1 => {}
            _ => return Err(MemError::NotAllocated { frame }),
        }
        let new_key = ListKey {
            chiplet,
            size: PageSize::Size64K,
            alloc,
        };
        let mut state = BlockState::new(new_key, 32);
        let list = self.lists.entry(new_key).or_default();
        let mut released = 0;
        for (i, &u) in used.iter().enumerate() {
            if u {
                state.set(i as u32);
                state.allocated += 1;
            } else {
                list.push(frame + i as u64 * PageSize::Size64K.bytes());
                released += 1;
            }
        }
        self.stats.downgrades += 1;
        if state.allocated == 0 {
            // Nothing was in use: reclaim the whole block instead of
            // leaving 32 orphan frames on the free list.
            self.blocks.insert(block, state);
            self.reclaim_block(block);
            released = 0;
        } else {
            self.blocks.insert(block, state);
        }
        Ok(released)
    }

    /// Bytes currently allocated (frames handed out, weighted by frame
    /// size) on `chiplet`.
    pub fn allocated_bytes(&self, chiplet: ChipletId) -> u64 {
        self.blocks
            .values()
            .filter(|s| s.key.chiplet == chiplet)
            .map(|s| s.allocated as u64 * s.key.size.bytes())
            .sum()
    }

    /// `true` if `chiplet` can serve at least one more frame of `size` for
    /// `alloc` without falling back.
    pub fn can_alloc(&self, chiplet: ChipletId, size: PageSize, alloc: AllocId) -> bool {
        let key = ListKey {
            chiplet,
            size,
            alloc,
        };
        self.lists.get(&key).is_some_and(|l| !l.is_empty())
            || !self.free_blocks[chiplet.index()].is_empty()
    }

    fn split_block(&mut self, key: ListKey) -> Result<(), MemError> {
        let block = self.free_blocks[key.chiplet.index()].pop_front().ok_or(
            MemError::ChipletExhausted {
                chiplet: key.chiplet,
                size: key.size,
            },
        )?;
        debug_assert_eq!(self.layout.chiplet_of_block(block), key.chiplet);
        let frames = (VA_BLOCK_BYTES / key.size.bytes()) as u32;
        let base = self.layout.block_base(block);
        let list = self.lists.entry(key).or_default();
        // Push in reverse so pops hand frames out in ascending order,
        // keeping reservations physically dense.
        for i in (0..frames).rev() {
            list.push(base + i as u64 * key.size.bytes());
        }
        self.blocks.insert(block, BlockState::new(key, frames));
        self.stats.block_splits += 1;
        Ok(())
    }

    fn reclaim_block(&mut self, block: u64) {
        let Some(state) = self.blocks.remove(&block) else {
            return;
        };
        debug_assert_eq!(state.allocated, 0);
        if let Some(list) = self.lists.get_mut(&state.key) {
            list.retain(|f| self.layout.block_of(*f) != block);
        }
        self.free_blocks[state.key.chiplet.index()].push_back(block);
        self.stats.block_reclaims += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc4() -> FrameAllocator {
        FrameAllocator::new(PhysLayout::new(4), 4)
    }

    const A0: AllocId = AllocId::new(0);
    const A1: AllocId = AllocId::new(1);
    const C0: ChipletId = ChipletId::new(0);
    const C1: ChipletId = ChipletId::new(1);

    #[test]
    fn frames_come_from_requested_chiplet() {
        let mut a = alloc4();
        for c in ChipletId::all(4) {
            let f = a.alloc_frame(c, PageSize::Size64K, A0).unwrap();
            assert_eq!(a.layout().chiplet_of(f), c);
        }
    }

    #[test]
    fn frames_within_a_block_are_dense_and_ascending() {
        let mut a = alloc4();
        let mut prev = None;
        for _ in 0..32 {
            let f = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
            if let Some(p) = prev {
                assert_eq!(f.distance_from(p), PageSize::Size64K.bytes());
            }
            prev = Some(f);
        }
        assert_eq!(a.blocks_consumed(), 1);
        // 33rd frame splits a second block.
        a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        assert_eq!(a.blocks_consumed(), 2);
    }

    #[test]
    fn distinct_allocs_never_share_a_block() {
        let mut a = alloc4();
        let f0 = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        let f1 = a.alloc_frame(C0, PageSize::Size64K, A1).unwrap();
        assert_ne!(a.layout().block_of(f0), a.layout().block_of(f1));
    }

    #[test]
    fn distinct_sizes_never_share_a_block() {
        let mut a = alloc4();
        let f0 = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        let f1 = a.alloc_frame(C0, PageSize::Size256K, A0).unwrap();
        assert_ne!(a.layout().block_of(f0), a.layout().block_of(f1));
    }

    #[test]
    fn free_reclaims_block_and_allows_reuse_by_other_alloc() {
        let mut a = alloc4();
        let f = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        assert_eq!(a.blocks_consumed(), 1);
        a.free_frame(f, PageSize::Size64K, A0).unwrap();
        assert_eq!(a.blocks_consumed(), 0);
        assert_eq!(a.free_blocks(C0), 4);
        // The reclaimed block is usable by a different structure/size.
        let g = a.alloc_frame(C0, PageSize::Size2M, A1).unwrap();
        assert_eq!(a.layout().chiplet_of(g), C0);
        assert_eq!(a.stats().block_reclaims, 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = alloc4();
        let f = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        let g = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        a.free_frame(f, PageSize::Size64K, A0).unwrap();
        assert_eq!(
            a.free_frame(f, PageSize::Size64K, A0),
            Err(MemError::NotAllocated { frame: f })
        );
        a.free_frame(g, PageSize::Size64K, A0).unwrap();
    }

    #[test]
    fn free_with_wrong_key_is_rejected() {
        let mut a = alloc4();
        let f = a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        assert!(matches!(
            a.free_frame(f, PageSize::Size64K, A1),
            Err(MemError::NotAllocated { .. })
        ));
        assert!(matches!(
            a.free_frame(f, PageSize::Size128K, A0),
            Err(MemError::NotAllocated { .. })
        ));
    }

    #[test]
    fn misaligned_free_is_rejected() {
        let mut a = alloc4();
        let f = a.alloc_frame(C0, PageSize::Size2M, A0).unwrap();
        assert!(matches!(
            a.free_frame(f + 4096, PageSize::Size2M, A0),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn exhaustion_reports_error_then_fallback_works() {
        let mut a = FrameAllocator::new(PhysLayout::new(4), 1);
        a.alloc_frame(C0, PageSize::Size2M, A0).unwrap();
        assert_eq!(
            a.alloc_frame(C0, PageSize::Size2M, A0),
            Err(MemError::ChipletExhausted {
                chiplet: C0,
                size: PageSize::Size2M
            })
        );
        let (f, served) = a.alloc_frame_or_fallback(C0, PageSize::Size2M, A0).unwrap();
        assert_ne!(served, C0);
        assert_eq!(a.layout().chiplet_of(f), served);
        assert_eq!(a.stats().chiplet_fallbacks, 1);
    }

    #[test]
    fn downgrade_releases_unused_subframes() {
        let mut a = alloc4();
        let f = a.alloc_frame(C1, PageSize::Size2M, A0).unwrap();
        let mut used = [false; 32];
        used[0] = true;
        used[5] = true;
        let released = a.downgrade_block(f, A0, &used).unwrap();
        assert_eq!(released, 30);
        // Released frames are immediately reusable as 64KB frames of the
        // same structure, and come in ascending order of address.
        let n0 = a.alloc_frame(C1, PageSize::Size64K, A0).unwrap();
        assert_eq!(a.layout().block_of(n0), a.layout().block_of(f));
        // The used subframes can now be freed as 64KB frames.
        a.free_frame(f, PageSize::Size64K, A0).unwrap();
        a.free_frame(f + 5 * 65536, PageSize::Size64K, A0).unwrap();
    }

    #[test]
    fn downgrade_with_nothing_used_reclaims_block() {
        let mut a = alloc4();
        let f = a.alloc_frame(C1, PageSize::Size2M, A0).unwrap();
        let released = a.downgrade_block(f, A0, &[false; 32]).unwrap();
        assert_eq!(released, 0);
        assert_eq!(a.blocks_consumed(), 0);
        assert_eq!(a.free_blocks(C1), 4);
    }

    #[test]
    fn downgrade_of_unallocated_block_is_rejected() {
        let mut a = alloc4();
        let f = a.alloc_frame(C1, PageSize::Size64K, A0).unwrap();
        let base = f.align_down(VA_BLOCK_BYTES);
        assert!(matches!(
            a.downgrade_block(base, A0, &[false; 32]),
            Err(MemError::NotAllocated { .. })
        ));
    }

    #[test]
    fn allocated_bytes_tracks_handouts() {
        let mut a = alloc4();
        assert_eq!(a.allocated_bytes(C0), 0);
        let f = a.alloc_frame(C0, PageSize::Size256K, A0).unwrap();
        a.alloc_frame(C0, PageSize::Size256K, A0).unwrap();
        assert_eq!(a.allocated_bytes(C0), 2 * PageSize::Size256K.bytes());
        a.free_frame(f, PageSize::Size256K, A0).unwrap();
        assert_eq!(a.allocated_bytes(C0), PageSize::Size256K.bytes());
    }

    #[test]
    fn can_alloc_reflects_capacity() {
        let mut a = FrameAllocator::new(PhysLayout::new(4), 1);
        assert!(a.can_alloc(C0, PageSize::Size64K, A0));
        for _ in 0..32 {
            a.alloc_frame(C0, PageSize::Size64K, A0).unwrap();
        }
        assert!(!a.can_alloc(C0, PageSize::Size64K, A0));
        assert!(!a.can_alloc(C0, PageSize::Size64K, A1));
    }
}
