//! Per-VA-block page-size assignment (paper §4.1).
//!
//! The virtual address space is partitioned into 2MB **VA blocks**; the
//! memory manager assigns one page size per block, so multiple page sizes
//! can coexist in an address space while keeping size tracking trivial.

use std::collections::HashMap;

use mcm_types::{AllocId, PageSize, VirtAddr, VA_BLOCK_BYTES};

use crate::MemError;

/// Page-size assignment of one VA block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VaBlockInfo {
    /// The page size all mappings in this block must use.
    pub size: PageSize,
    /// The data structure this block belongs to.
    pub alloc: AllocId,
}

/// Map from VA block (2MB-aligned virtual region) to its assigned page size.
///
/// # Examples
///
/// ```
/// use mcm_mem::VaBlockMap;
/// use mcm_types::{AllocId, PageSize, VirtAddr};
///
/// let mut m = VaBlockMap::new();
/// let va = VirtAddr::new(6 * 2 * 1024 * 1024);
/// m.assign(va, PageSize::Size256K, AllocId::new(1))?;
/// assert_eq!(m.size_of(va + 12345), Some(PageSize::Size256K));
/// # Ok::<(), mcm_mem::MemError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct VaBlockMap {
    blocks: HashMap<u64, VaBlockInfo>,
}

impl VaBlockMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of VA blocks with an assignment.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if no block has an assignment.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Assigns `size` to the VA block containing `va`.
    ///
    /// Re-assigning the same size is a no-op.
    ///
    /// # Errors
    ///
    /// [`MemError::SizeConflict`] if the block already has a different size.
    pub fn assign(&mut self, va: VirtAddr, size: PageSize, alloc: AllocId) -> Result<(), MemError> {
        let block = va.raw() / VA_BLOCK_BYTES;
        match self.blocks.get(&block) {
            Some(info) if info.size != size => Err(MemError::SizeConflict {
                va: VirtAddr::new(block * VA_BLOCK_BYTES),
                assigned: info.size,
                requested: size,
            }),
            Some(_) => Ok(()),
            None => {
                self.blocks.insert(block, VaBlockInfo { size, alloc });
                Ok(())
            }
        }
    }

    /// Forcibly re-assigns the block containing `va` (used by migrating
    /// policies that split/merge pages; CLAP itself never re-assigns).
    pub fn reassign(&mut self, va: VirtAddr, size: PageSize, alloc: AllocId) {
        let block = va.raw() / VA_BLOCK_BYTES;
        self.blocks.insert(block, VaBlockInfo { size, alloc });
    }

    /// The assignment of the block containing `va`, if any.
    pub fn get(&self, va: VirtAddr) -> Option<VaBlockInfo> {
        self.blocks.get(&(va.raw() / VA_BLOCK_BYTES)).copied()
    }

    /// The page size assigned to the block containing `va`, if any.
    pub fn size_of(&self, va: VirtAddr) -> Option<PageSize> {
        self.get(va).map(|i| i.size)
    }

    /// Base VA of the `size`-aligned *region* containing `va` within its
    /// block (e.g. the 256KB-aligned sub-region used for one reservation).
    pub fn region_base(va: VirtAddr, size: PageSize) -> VirtAddr {
        va.align_down(size.bytes())
    }

    /// Removes assignments for every block of `[base, base+bytes)` (used on
    /// data-structure free).
    pub fn clear_range(&mut self, base: VirtAddr, bytes: u64) {
        let first = base.raw() / VA_BLOCK_BYTES;
        let last = (base.raw() + bytes.saturating_sub(1)) / VA_BLOCK_BYTES;
        for b in first..=last {
            self.blocks.remove(&b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AllocId = AllocId::new(0);

    #[test]
    fn assignment_covers_whole_block() {
        let mut m = VaBlockMap::new();
        let base = VirtAddr::new(4 * VA_BLOCK_BYTES);
        m.assign(base + 123, PageSize::Size64K, A).unwrap();
        assert_eq!(m.size_of(base), Some(PageSize::Size64K));
        assert_eq!(
            m.size_of(base + VA_BLOCK_BYTES - 1),
            Some(PageSize::Size64K)
        );
        assert_eq!(m.size_of(base + VA_BLOCK_BYTES), None);
    }

    #[test]
    fn conflicting_assignment_is_rejected() {
        let mut m = VaBlockMap::new();
        let va = VirtAddr::new(0);
        m.assign(va, PageSize::Size64K, A).unwrap();
        m.assign(va + 999, PageSize::Size64K, A).unwrap(); // same size: ok
        let err = m.assign(va, PageSize::Size2M, A).unwrap_err();
        assert!(matches!(err, MemError::SizeConflict { .. }));
        // reassign overrides.
        m.reassign(va, PageSize::Size2M, A);
        assert_eq!(m.size_of(va), Some(PageSize::Size2M));
    }

    #[test]
    fn region_base_aligns_within_block() {
        let va = VirtAddr::new(VA_BLOCK_BYTES + 300 * 1024);
        assert_eq!(
            VaBlockMap::region_base(va, PageSize::Size256K).raw(),
            VA_BLOCK_BYTES + 256 * 1024
        );
    }

    #[test]
    fn clear_range_removes_all_touched_blocks() {
        let mut m = VaBlockMap::new();
        for i in 0..4u64 {
            m.assign(VirtAddr::new(i * VA_BLOCK_BYTES), PageSize::Size64K, A)
                .unwrap();
        }
        m.clear_range(VirtAddr::new(VA_BLOCK_BYTES / 2), 2 * VA_BLOCK_BYTES);
        assert_eq!(m.size_of(VirtAddr::new(0)), None);
        assert_eq!(m.size_of(VirtAddr::new(VA_BLOCK_BYTES)), None);
        assert_eq!(m.size_of(VirtAddr::new(2 * VA_BLOCK_BYTES)), None);
        assert_eq!(
            m.size_of(VirtAddr::new(3 * VA_BLOCK_BYTES)),
            Some(PageSize::Size64K)
        );
        assert_eq!(m.len(), 1);
    }
}
