//! Property-based tests for the block-based frame allocator and the
//! reservation table: conservation, no double-handouts, chiplet ownership.

use proptest::prelude::*;

use mcm_mem::{FrameAllocator, MemError, ReservationTable};
use mcm_types::{AllocId, ChipletId, PageSize, PhysAddr, PhysLayout, VirtAddr, VA_BLOCK_BYTES};

#[derive(Clone, Debug)]
enum Op {
    Alloc {
        chiplet: u8,
        size_idx: usize,
        alloc: u16,
    },
    FreeNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0usize..PageSize::CLAP_SELECTABLE.len(), 0u16..3).prop_map(
            |(chiplet, size_idx, alloc)| Op::Alloc {
                chiplet,
                size_idx,
                alloc
            }
        ),
        (0usize..64).prop_map(Op::FreeNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free sequences never hand out overlapping frames, every
    /// frame lands on its requested chiplet, and freeing everything returns
    /// the allocator to a pristine state.
    #[test]
    fn allocator_invariants(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let layout = PhysLayout::new(4);
        let mut a = FrameAllocator::new(layout, 8);
        // Live frames: (pa, size, alloc)
        let mut live: Vec<(PhysAddr, PageSize, AllocId)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { chiplet, size_idx, alloc } => {
                    let c = ChipletId::new(chiplet);
                    let s = PageSize::CLAP_SELECTABLE[size_idx];
                    let id = AllocId::new(alloc);
                    match a.alloc_frame(c, s, id) {
                        Ok(f) => {
                            prop_assert_eq!(layout.chiplet_of(f), c);
                            prop_assert!(f.is_aligned(s.bytes()));
                            // No overlap with any live frame.
                            for &(g, gs, _) in &live {
                                let disjoint = f.raw() + s.bytes() <= g.raw()
                                    || g.raw() + gs.bytes() <= f.raw();
                                prop_assert!(disjoint, "frames overlap: {f} {g}");
                            }
                            live.push((f, s, id));
                        }
                        Err(MemError::ChipletExhausted { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (f, s, id) = live.swap_remove(n % live.len());
                        a.free_frame(f, s, id).expect("freeing a live frame");
                        // Double free must be rejected.
                        prop_assert!(a.free_frame(f, s, id).is_err());
                    }
                }
            }
        }

        // Drain everything: allocator must return to pristine state.
        for (f, s, id) in live.drain(..) {
            a.free_frame(f, s, id).expect("draining");
        }
        prop_assert_eq!(a.blocks_consumed(), 0);
        for c in ChipletId::all(4) {
            prop_assert_eq!(a.free_blocks(c), 8);
            prop_assert_eq!(a.allocated_bytes(c), 0);
        }
        prop_assert_eq!(a.stats().allocs, a.stats().frees);
    }

    /// Reservations: populate always returns a PA at the same offset as the
    /// VA, fullness is reached exactly when all subpages are touched, and
    /// released regions can be re-reserved.
    #[test]
    fn reservation_invariants(
        region in 0u64..32,
        size_idx in 0usize..PageSize::CLAP_SELECTABLE.len(),
        touches in proptest::collection::vec(0u64..32, 1..64),
    ) {
        let size = PageSize::CLAP_SELECTABLE[size_idx];
        let mut t = ReservationTable::new();
        let va = VirtAddr::new(region * VA_BLOCK_BYTES).align_down(size.bytes());
        let pa = PhysAddr::new(64 * VA_BLOCK_BYTES);
        t.reserve(va, pa, size, ChipletId::new(1)).unwrap();

        let subpages = (size.bytes() / (64 * 1024)) as u64;
        let mut seen = std::collections::HashSet::new();
        for touch in touches {
            let sub = touch % subpages;
            let addr = va + sub * 64 * 1024 + (touch % 1024);
            let (p, full) = t.populate(addr).unwrap();
            prop_assert_eq!(p.distance_from(pa), sub * 64 * 1024);
            seen.insert(sub);
            prop_assert_eq!(full, seen.len() as u64 == subpages);
            prop_assert_eq!(
                t.covering(addr).unwrap().populated_count() as usize,
                seen.len()
            );
        }

        let r = t.release(va).unwrap();
        prop_assert_eq!(r.populated_count() as usize, seen.len());
        prop_assert!(t.is_empty());
        t.reserve(va, pa, size, ChipletId::new(2)).unwrap();
    }
}
