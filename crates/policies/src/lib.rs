//! Baseline paging policies and remote-caching schemes for MCM GPUs.
//!
//! Implements every non-CLAP configuration of the paper's evaluation (§5):
//!
//! | Paper config | Here |
//! |---|---|
//! | 1/2. Static paging (S-64KB, S-2MB) | [`s64k`], [`s2m`] (+ [`s4k`], hypothetical sizes via [`static_paging`]) |
//! | 3/4. Ideal C-NUMA (+inter) | [`CNuma`] |
//! | 5. GRIT | [`Grit`] |
//! | 6. MGvm | [`mgvm`] + `PtePlacement::RequesterLocal` |
//! | 7. Barre-Chord | [`fbarre`] + `TranslationConfig::barre_pattern` |
//! | 9. Ideal | [`ideal`] + `TranslationConfig::ideal_2m_reach` |
//! | SA-64KB / SA-2MB (§5.2) | [`sa_64k`], [`sa_2m`] |
//! | NUBA / SAC remote caching | [`Nuba`], [`Sac`] |
//!
//! Config 8 (CLAP itself) lives in the `clap-core` crate.

#![deny(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod cnuma;
mod grit;
mod remote_caching;
mod static_paging;

/// Lifts an allocator failure into the simulator's typed error space so an
/// unresolvable fault aborts the *run*, not the process.
pub(crate) fn mem_to_sim(e: mcm_mem::MemError) -> mcm_sim::SimError {
    use mcm_mem::MemError;
    use mcm_sim::SimError;
    match e {
        MemError::ChipletExhausted { chiplet, size } => SimError::OutOfFrames { chiplet, size },
        MemError::Misaligned { addr, align } => SimError::Misaligned { addr, align },
        other => SimError::PolicyViolation {
            reason: other.to_string(),
        },
    }
}

pub use cnuma::CNuma;
pub use grit::Grit;
pub use remote_caching::{Nuba, Sac};
pub use static_paging::{
    fbarre, ideal, mgvm, s2m, s4k, s64k, sa_2m, sa_64k, static_paging, Placement, StaticPaging,
};
