//! Remote-data caching baselines: NUBA \[111\] and SAC \[109\] (paper §1
//! Fig. 2 and §5.2 Fig. 21).
//!
//! Both schemes intercept local-L2 misses to remote-mapped data:
//!
//! * **NUBA** carves a large cache for remote data out of each chiplet's
//!   local DRAM — hits are served at local-DRAM cost.
//! * **SAC** (sharing-aware caching) dedicates part of each chiplet's L2
//!   to remote lines — hits are served at SRAM cost but capacity is small.

use mcm_sim::{RemoteCacheModel, RemoteServe, SetAssocCache, SimConfig};
use mcm_types::{ChipletId, PhysAddr};

/// NUBA-style DRAM-side remote cache (one partition per chiplet).
///
/// # Examples
///
/// ```
/// use mcm_policies::Nuba;
/// use mcm_sim::{RemoteCacheModel, SimConfig};
/// use mcm_types::{ChipletId, PhysAddr};
///
/// let mut n = Nuba::for_config(&SimConfig::baseline());
/// let c = ChipletId::new(0);
/// assert!(n.access(c, PhysAddr::new(0x20_0000)).is_none()); // cold miss
/// assert!(n.access(c, PhysAddr::new(0x20_0000)).is_some()); // now cached
/// ```
#[derive(Debug)]
pub struct Nuba {
    caches: Vec<SetAssocCache>,
    line_bytes: u64,
}

impl Nuba {
    /// Bytes of local DRAM carved per chiplet before resource scaling.
    /// NUBA dedicates DRAM capacity to remote data, so the carve is sized
    /// like a memory-side cache (hundreds of MB), not an SRAM.
    pub const CAPACITY_BYTES: usize = 512 * 1024 * 1024;

    /// Builds the NUBA model sized for `cfg` (capacity shrinks with
    /// `resource_scale` like every other capacity in the machine).
    pub fn for_config(cfg: &SimConfig) -> Self {
        let capacity = (Self::CAPACITY_BYTES / cfg.resource_scale as usize).max(1024 * 1024);
        Nuba {
            caches: (0..cfg.num_chiplets)
                .map(|_| SetAssocCache::with_geometry(capacity, cfg.line_bytes as usize, 16))
                .collect(),
            line_bytes: cfg.line_bytes,
        }
    }
}

impl RemoteCacheModel for Nuba {
    fn name(&self) -> &str {
        "NUBA"
    }

    fn access(&mut self, requester: ChipletId, line_pa: PhysAddr) -> Option<RemoteServe> {
        let line = line_pa.raw() / self.line_bytes;
        self.caches[requester.index()]
            .access(line)
            .then_some(RemoteServe::LocalDram)
    }

    fn invalidate(&mut self, line_pa: PhysAddr) {
        let line = line_pa.raw() / self.line_bytes;
        for c in &mut self.caches {
            c.invalidate(line);
        }
    }
}

/// SAC-style sharing-aware L2 carve (one partition per chiplet).
///
/// # Examples
///
/// ```
/// use mcm_policies::Sac;
/// use mcm_sim::{RemoteCacheModel, RemoteServe, SimConfig};
/// use mcm_types::{ChipletId, PhysAddr};
///
/// let mut s = Sac::for_config(&SimConfig::baseline());
/// let c = ChipletId::new(1);
/// assert!(s.access(c, PhysAddr::new(0)).is_none());
/// assert_eq!(s.access(c, PhysAddr::new(0)), Some(RemoteServe::Sram));
/// ```
#[derive(Debug)]
pub struct Sac {
    caches: Vec<SetAssocCache>,
    line_bytes: u64,
}

impl Sac {
    /// Fraction of the (scaled) L2 dedicated to remote lines.
    pub const L2_FRACTION: usize = 4;

    /// Builds the SAC model sized for `cfg`.
    pub fn for_config(cfg: &SimConfig) -> Self {
        let capacity = (cfg.effective_l2d_bytes() / Self::L2_FRACTION).max(16 * 1024);
        Sac {
            caches: (0..cfg.num_chiplets)
                .map(|_| SetAssocCache::with_geometry(capacity, cfg.line_bytes as usize, 8))
                .collect(),
            line_bytes: cfg.line_bytes,
        }
    }
}

impl RemoteCacheModel for Sac {
    fn name(&self) -> &str {
        "SAC"
    }

    fn access(&mut self, requester: ChipletId, line_pa: PhysAddr) -> Option<RemoteServe> {
        let line = line_pa.raw() / self.line_bytes;
        self.caches[requester.index()]
            .access(line)
            .then_some(RemoteServe::Sram)
    }

    fn invalidate(&mut self, line_pa: PhysAddr) {
        let line = line_pa.raw() / self.line_bytes;
        for c in &mut self.caches {
            c.invalidate(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_per_requester() {
        let mut n = Nuba::for_config(&SimConfig::baseline());
        let pa = PhysAddr::new(0x123_0000);
        assert!(n.access(ChipletId::new(0), pa).is_none());
        // A different chiplet has its own partition: still cold.
        assert!(n.access(ChipletId::new(1), pa).is_none());
        assert_eq!(
            n.access(ChipletId::new(0), pa),
            Some(RemoteServe::LocalDram)
        );
    }

    #[test]
    fn invalidate_clears_all_partitions() {
        let mut s = Sac::for_config(&SimConfig::baseline());
        let pa = PhysAddr::new(0x40_0080);
        s.access(ChipletId::new(0), pa);
        s.access(ChipletId::new(2), pa);
        s.invalidate(pa);
        assert!(s.access(ChipletId::new(0), pa).is_none());
        assert!(s.access(ChipletId::new(2), pa).is_none());
    }

    #[test]
    fn line_granularity_aliases_within_line() {
        let mut n = Nuba::for_config(&SimConfig::baseline());
        let c = ChipletId::new(3);
        assert!(n.access(c, PhysAddr::new(0x1000)).is_none());
        // Same 128B line, different byte.
        assert!(n.access(c, PhysAddr::new(0x107f)).is_some());
        assert!(n.access(c, PhysAddr::new(0x1080)).is_none());
    }

    #[test]
    fn capacities_scale_with_config() {
        // Just a smoke test that scaled configs construct.
        let cfg = SimConfig::baseline().scaled(8);
        let _ = Nuba::for_config(&cfg);
        let _ = Sac::for_config(&cfg);
    }
}
