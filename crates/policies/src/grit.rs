//! GRIT \[104\]: fine-grained dynamic page placement via access history,
//! adapted to MCM GPUs (paper §5, config 5).
//!
//! GRIT keeps 64KB pages (no size adaptation) and migrates a page to the
//! chiplet that dominates its access history. Page duplication is omitted
//! (a unified page table cannot map one VA twice, §2.3). The paper models
//! migrations as free ("ideal"); Fig. 20 re-runs it with real costs —
//! toggle with [`Grit::with_real_migration`].

use std::collections::{HashMap, HashSet};

use mcm_mem::FrameAllocator;
use mcm_sim::{AllocInfo, Directive, FaultCtx, PagingPolicy, SimConfig, SimError, WalkEvent};
use mcm_types::{AllocId, ChipletId, PageSize, PhysAddr, PhysLayout, VirtAddr, BASE_PAGE_BYTES};

use crate::mem_to_sim;

const MAX_CHIPLETS: usize = 8;

/// The GRIT policy (64KB first-touch placement + history-driven migration).
///
/// # Examples
///
/// ```
/// use mcm_policies::Grit;
/// use mcm_sim::PagingPolicy;
///
/// let g = Grit::new();
/// assert_eq!(g.name(), "GRIT");
/// assert!(g.ideal_migration());
/// assert!(!Grit::new().with_real_migration().ideal_migration());
/// ```
#[derive(Debug)]
pub struct Grit {
    ideal: bool,
    migrations: u64,
    st: Option<St>,
}

#[derive(Debug)]
struct St {
    allocator: FrameAllocator,
    layout: PhysLayout,
    /// Per-64KB-page access counts by requester chiplet.
    history: HashMap<u64, [u32; MAX_CHIPLETS]>,
    /// Pages touched since the last epoch.
    dirty: HashSet<u64>,
    /// Current frame of each mapped page (for freeing on migration).
    frames: HashMap<u64, (PhysAddr, AllocId)>,
}

impl Grit {
    /// Creates GRIT with ideal (zero-cost) migration, as in Fig. 18.
    pub fn new() -> Self {
        Grit {
            ideal: true,
            migrations: 0,
            st: None,
        }
    }

    /// Charges real shootdown + copy costs per migration (Fig. 20).
    pub fn with_real_migration(mut self) -> Self {
        self.ideal = false;
        self
    }

    /// Pages migrated so far (policy-side view).
    pub fn migrations_planned(&self) -> u64 {
        self.migrations
    }
}

impl Default for Grit {
    fn default() -> Self {
        Self::new()
    }
}

impl Grit {
    const MIN_SAMPLES: u32 = 8;

    fn st(&mut self) -> Option<&mut St> {
        self.st.as_mut()
    }
}

impl PagingPolicy for Grit {
    fn name(&self) -> &str {
        "GRIT"
    }

    fn begin(&mut self, _allocs: &[AllocInfo], cfg: &SimConfig) {
        self.st = Some(St {
            allocator: FrameAllocator::new(cfg.layout(), cfg.pf_blocks_per_chiplet)
                .with_scatter(32),
            layout: cfg.layout(),
            history: HashMap::new(),
            dirty: HashSet::new(),
            frames: HashMap::new(),
        });
    }

    fn on_fault(&mut self, ctx: &FaultCtx) -> Result<Vec<Directive>, SimError> {
        let Some(st) = self.st.as_mut() else {
            return Err(SimError::PolicyViolation {
                reason: "on_fault before begin()".into(),
            });
        };
        let (frame, _) = st
            .allocator
            .alloc_frame_or_fallback(ctx.requester, PageSize::Size64K, ctx.alloc)
            .map_err(mem_to_sim)?;
        st.frames.insert(ctx.va.raw() >> 16, (frame, ctx.alloc));
        Ok(vec![Directive::Map {
            va: ctx.va,
            pa: frame,
            size: PageSize::Size64K,
            alloc: ctx.alloc,
        }])
    }

    fn wants_access_samples(&self) -> bool {
        true
    }

    fn on_access(&mut self, ev: &WalkEvent) {
        let Some(st) = self.st() else {
            return;
        };
        let vpn = ev.va.raw() >> 16;
        let h = st.history.entry(vpn).or_default();
        h[ev.requester.index() % MAX_CHIPLETS] += 1;
        st.dirty.insert(vpn);
    }

    fn on_epoch(&mut self, _cycle: u64) -> Vec<Directive> {
        let mut dirs = Vec::new();
        let mut planned = Vec::new();
        {
            let Some(st) = self.st.as_mut() else {
                return Vec::new();
            };
            let mut dirty: Vec<u64> = st.dirty.drain().collect();
            dirty.sort_unstable();
            for vpn in dirty {
                let Some(&(frame, alloc)) = st.frames.get(&vpn) else {
                    continue;
                };
                let Some(counts) = st.history.get(&vpn) else {
                    continue;
                };
                let total: u32 = counts.iter().sum();
                if total < Self::MIN_SAMPLES {
                    continue;
                }
                let Some(dominant) = counts[..st.layout.num_chiplets()]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(i, _)| ChipletId::new(i as u8))
                else {
                    continue;
                };
                let current = st.layout.chiplet_of(frame);
                if dominant != current && counts[dominant.index()] > 2 * counts[current.index()] + 2
                {
                    planned.push((vpn, frame, alloc, dominant));
                }
            }
            for &(vpn, old_frame, alloc, dominant) in &planned {
                if !st.allocator.can_alloc(dominant, PageSize::Size64K, alloc) {
                    continue;
                }
                let Ok(new_frame) = st.allocator.alloc_frame(dominant, PageSize::Size64K, alloc)
                else {
                    continue;
                };
                let _ = st.allocator.free_frame(old_frame, PageSize::Size64K, alloc);
                st.frames.insert(vpn, (new_frame, alloc));
                st.history.remove(&vpn);
                dirs.push(Directive::Migrate {
                    va: VirtAddr::new(vpn * BASE_PAGE_BYTES),
                    to_pa: new_frame,
                });
            }
        }
        self.migrations += dirs.len() as u64;
        dirs
    }

    fn ideal_migration(&self) -> bool {
        self.ideal
    }

    fn blocks_consumed(&self) -> Option<usize> {
        self.st.as_ref().map(|s| s.allocator.blocks_consumed())
    }

    fn frame_fallbacks(&self) -> u64 {
        self.st
            .as_ref()
            .map_or(0, |s| s.allocator.stats().chiplet_fallbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_types::{SmId, TbId};

    fn ctx(va: u64, chiplet: u8) -> FaultCtx {
        FaultCtx {
            va: VirtAddr::new(va),
            alloc: AllocId::new(0),
            requester: ChipletId::new(chiplet),
            sm: SmId::new(0),
            tb: TbId::new(0),
            cycle: 0,
        }
    }

    fn ev(va: u64, chiplet: u8) -> WalkEvent {
        WalkEvent {
            va: VirtAddr::new(va),
            alloc: AllocId::new(0),
            requester: ChipletId::new(chiplet),
            data_chiplet: ChipletId::new(0),
            cycle: 0,
        }
    }

    #[test]
    fn first_touch_then_migrates_to_dominant_accessor() {
        let mut g = Grit::new();
        g.begin(&[], &SimConfig::baseline());
        let va = 2u64 << 20;
        let dirs = g.on_fault(&ctx(va, 0)).unwrap();
        let Directive::Map { pa, .. } = dirs[0] else {
            panic!("expected Map")
        };
        assert_eq!(PhysLayout::new(4).chiplet_of(pa).index(), 0);

        // Chiplet 2 hammers the page.
        for _ in 0..20 {
            g.on_access(&ev(va + 128, 2));
        }
        let dirs = g.on_epoch(1000);
        assert_eq!(dirs.len(), 1);
        match dirs[0] {
            Directive::Migrate { va: mva, to_pa } => {
                assert_eq!(mva.raw(), va);
                assert_eq!(PhysLayout::new(4).chiplet_of(to_pa).index(), 2);
            }
            _ => panic!("expected Migrate"),
        }
        // History reset: no repeated migration next epoch.
        assert!(g.on_epoch(2000).is_empty());
    }

    #[test]
    fn local_pages_stay_put() {
        let mut g = Grit::new();
        g.begin(&[], &SimConfig::baseline());
        let va = 2u64 << 20;
        g.on_fault(&ctx(va, 1)).unwrap();
        for _ in 0..20 {
            g.on_access(&ev(va, 1));
        }
        assert!(g.on_epoch(1000).is_empty());
    }

    #[test]
    fn too_few_samples_do_not_migrate() {
        let mut g = Grit::new();
        g.begin(&[], &SimConfig::baseline());
        let va = 2u64 << 20;
        g.on_fault(&ctx(va, 0)).unwrap();
        for _ in 0..3 {
            g.on_access(&ev(va, 2));
        }
        assert!(g.on_epoch(1000).is_empty());
    }
}
