//! Ideal C-NUMA \[28, 34\]: reactive large-page construction/splitting via
//! page migration, adapted from NUMA CPUs (paper §5, configs 3-4).
//!
//! Pages start as 2MB regions (reservation + promotion). Software sampling
//! tracks per-64KB-page accessor histograms; each epoch, blocks whose
//! remote-access ratio exceeds a threshold are *split* — demoted to 64KB
//! pages whose frames migrate to each page's dominant accessor. The
//! `+inter` variant (paper config 4) descends the size ladder gradually
//! (2MB → 512KB → 128KB → 64KB), keeping sub-region frames physically
//! contiguous so coalesced TLB entries retain intermediate reach.
//!
//! Migration is free when `ideal` (as the paper assumes for configs 3-4);
//! Fig. 20 re-enables real costs.

use std::collections::{HashMap, HashSet};

use mcm_mem::{FrameAllocator, ReservationTable};
use mcm_sim::{AllocInfo, Directive, FaultCtx, PagingPolicy, SimConfig, SimError, WalkEvent};
use mcm_types::{
    AllocId, ChipletId, PageSize, PhysAddr, PhysLayout, VirtAddr, BASE_PAGE_BYTES, VA_BLOCK_BYTES,
};

use crate::mem_to_sim;

const MAX_CHIPLETS: usize = 8;
const PAGES_PER_BLOCK: usize = 32;

/// The Ideal C-NUMA policy.
///
/// # Examples
///
/// ```
/// use mcm_policies::CNuma;
/// use mcm_sim::PagingPolicy;
///
/// assert_eq!(CNuma::new().name(), "Ideal_C-NUMA");
/// assert_eq!(CNuma::with_intermediate_sizes().name(), "Ideal_C-NUMA+inter");
/// ```
#[derive(Debug)]
pub struct CNuma {
    name: &'static str,
    inter: bool,
    ideal: bool,
    st: Option<St>,
}

#[derive(Debug)]
struct BlockState {
    base: VirtAddr,
    alloc: AllocId,
    /// Current mapping granularity (2MB right after promotion).
    granularity: PageSize,
    /// Per 64KB page, per chiplet access counts.
    counts: Vec<[u32; MAX_CHIPLETS]>,
    /// Current frame backing each 64KB page (valid once demoted; while the
    /// block is a single 2MB leaf, entry `i` is `base_frame + i * 64KB`).
    frames: Vec<PhysAddr>,
}

#[derive(Debug)]
struct St {
    allocator: FrameAllocator,
    reservations: ReservationTable,
    layout: PhysLayout,
    /// Promoted blocks eligible for splitting, by VA-block index.
    blocks: HashMap<u64, BlockState>,
    dirty: HashSet<u64>,
}

impl CNuma {
    /// Remote-ratio threshold above which a block is split.
    const SPLIT_THRESHOLD: f64 = 0.25;
    /// Minimum samples per block before acting.
    const MIN_SAMPLES: u32 = 32;

    /// Plain Ideal C-NUMA: sizes {64KB, 2MB} only (paper config 3).
    pub fn new() -> Self {
        CNuma {
            name: "Ideal_C-NUMA",
            inter: false,
            ideal: true,
            st: None,
        }
    }

    /// The hypothetical variant with intermediate page sizes (config 4).
    /// Pair with `TranslationConfig::with_clap_coalescing()` so contiguous
    /// sub-regions keep intermediate TLB reach.
    pub fn with_intermediate_sizes() -> Self {
        CNuma {
            name: "Ideal_C-NUMA+inter",
            inter: true,
            ideal: true,
            st: None,
        }
    }

    /// Charges real shootdown + copy costs per migration (Fig. 20).
    pub fn with_real_migration(mut self) -> Self {
        self.ideal = false;
        self.name = if self.inter { "C-NUMA+inter" } else { "C-NUMA" };
        self
    }

    fn st(&mut self) -> Option<&mut St> {
        self.st.as_mut()
    }
}

impl Default for CNuma {
    fn default() -> Self {
        Self::new()
    }
}

impl PagingPolicy for CNuma {
    fn name(&self) -> &str {
        self.name
    }

    fn begin(&mut self, _allocs: &[AllocInfo], cfg: &SimConfig) {
        self.st = Some(St {
            allocator: FrameAllocator::new(cfg.layout(), cfg.pf_blocks_per_chiplet)
                .with_scatter(32),
            reservations: ReservationTable::new(),
            layout: cfg.layout(),
            blocks: HashMap::new(),
            dirty: HashSet::new(),
        });
    }

    fn on_fault(&mut self, ctx: &FaultCtx) -> Result<Vec<Directive>, SimError> {
        // Initial mapping: 2MB regions via reservation, first-touch.
        let Some(st) = self.st.as_mut() else {
            return Err(SimError::PolicyViolation {
                reason: "on_fault before begin()".into(),
            });
        };
        let region = ctx.va.align_down(VA_BLOCK_BYTES);
        if st.reservations.covering(ctx.va).is_none() {
            let (frame, served) = st
                .allocator
                .alloc_frame_or_fallback(ctx.requester, PageSize::Size2M, ctx.alloc)
                .map_err(mem_to_sim)?;
            st.reservations
                .reserve(region, frame, PageSize::Size2M, served)
                .map_err(mem_to_sim)?;
        }
        let (pa, full) = st.reservations.populate(ctx.va).map_err(mem_to_sim)?;
        let mut dirs = vec![Directive::Map {
            va: ctx.va,
            pa,
            size: PageSize::Size64K,
            alloc: ctx.alloc,
        }];
        if full {
            let r = st.reservations.release(region).map_err(mem_to_sim)?;
            st.blocks.insert(
                region.raw() / VA_BLOCK_BYTES,
                BlockState {
                    base: region,
                    alloc: ctx.alloc,
                    granularity: PageSize::Size2M,
                    counts: vec![[0; MAX_CHIPLETS]; PAGES_PER_BLOCK],
                    frames: (0..PAGES_PER_BLOCK as u64)
                        .map(|i| r.pa + i * BASE_PAGE_BYTES)
                        .collect(),
                },
            );
            dirs.push(Directive::Promote {
                base: region,
                size: PageSize::Size2M,
            });
        }
        Ok(dirs)
    }

    fn wants_access_samples(&self) -> bool {
        true
    }

    fn on_access(&mut self, ev: &WalkEvent) {
        let Some(st) = self.st() else {
            return;
        };
        let block = ev.va.raw() / VA_BLOCK_BYTES;
        if let Some(b) = st.blocks.get_mut(&block) {
            let page = (ev.va.raw() % VA_BLOCK_BYTES / BASE_PAGE_BYTES) as usize;
            b.counts[page][ev.requester.index() % MAX_CHIPLETS] += 1;
            st.dirty.insert(block);
        }
    }

    fn on_epoch(&mut self, _cycle: u64) -> Vec<Directive> {
        let inter = self.inter;
        let inter_next = move |s: PageSize| {
            if !inter {
                return PageSize::Size64K;
            }
            match s {
                PageSize::Size2M => PageSize::Size512K,
                PageSize::Size512K => PageSize::Size128K,
                _ => PageSize::Size64K,
            }
        };
        let Some(st) = self.st.as_mut() else {
            return Vec::new();
        };
        let mut dirs = Vec::new();
        let mut dirty: Vec<u64> = st.dirty.drain().collect();
        dirty.sort_unstable();
        for block in dirty {
            let Some(b) = st.blocks.get_mut(&block) else {
                continue;
            };
            if b.granularity == PageSize::Size64K {
                continue;
            }
            // Remote ratio of the block under its *current* placement.
            let mut total = 0u32;
            let mut remote = 0u32;
            for (i, c) in b.counts.iter().enumerate() {
                let home = st.layout.chiplet_of(b.frames[i]).index();
                let t: u32 = c.iter().sum();
                total += t;
                remote += t - c[home];
            }
            if total < Self::MIN_SAMPLES || (remote as f64) < Self::SPLIT_THRESHOLD * total as f64 {
                continue;
            }
            let next = inter_next(b.granularity);

            // Demote the single 2MB leaf into 64KB leaves at the same
            // frames, if not already demoted. Best-effort: if the frame
            // bookkeeping disagrees, leave the block promoted.
            if b.granularity == PageSize::Size2M {
                let frame0 = b.frames[0];
                if st
                    .allocator
                    .downgrade_block(frame0, b.alloc, &[true; 32])
                    .is_err()
                {
                    continue;
                }
                dirs.push(Directive::Unmap { va: b.base });
                for i in 0..PAGES_PER_BLOCK as u64 {
                    dirs.push(Directive::Map {
                        va: b.base + i * BASE_PAGE_BYTES,
                        pa: frame0 + i * BASE_PAGE_BYTES,
                        size: PageSize::Size64K,
                        alloc: b.alloc,
                    });
                }
            }
            b.granularity = next;

            // Regroup at the new granularity: each sub-region moves (as a
            // unit, keeping physical contiguity) to its dominant accessor.
            let pages_per_region = (next.bytes() / BASE_PAGE_BYTES) as usize;
            let chiplets = st.layout.num_chiplets();
            for r in 0..PAGES_PER_BLOCK / pages_per_region {
                let lo = r * pages_per_region;
                let hi = lo + pages_per_region;
                let mut agg = [0u64; MAX_CHIPLETS];
                for c in &b.counts[lo..hi] {
                    for (a, x) in agg.iter_mut().zip(c.iter()) {
                        *a += *x as u64;
                    }
                }
                if agg.iter().sum::<u64>() == 0 {
                    continue; // region unsampled this epoch
                }
                let Some(dominant) = agg[..chiplets]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(i, _)| ChipletId::new(i as u8))
                else {
                    continue;
                };
                let current = st.layout.chiplet_of(b.frames[lo]);
                if dominant == current {
                    continue;
                }
                if !st.allocator.can_alloc(dominant, next, b.alloc) {
                    continue;
                }
                let Ok(new_frame) = st.allocator.alloc_frame(dominant, next, b.alloc) else {
                    continue;
                };
                for (i, page) in (lo..hi).enumerate() {
                    let to_pa = new_frame + i as u64 * BASE_PAGE_BYTES;
                    dirs.push(Directive::Migrate {
                        va: b.base + page as u64 * BASE_PAGE_BYTES,
                        to_pa,
                    });
                    // Free the old 64KB frame.
                    let old = b.frames[page];
                    let _ = st.allocator.free_frame(old, PageSize::Size64K, b.alloc);
                    b.frames[page] = to_pa;
                }
            }
            for c in &mut b.counts {
                *c = [0; MAX_CHIPLETS];
            }
        }
        dirs
    }

    fn ideal_migration(&self) -> bool {
        self.ideal
    }

    fn blocks_consumed(&self) -> Option<usize> {
        self.st.as_ref().map(|s| s.allocator.blocks_consumed())
    }

    fn frame_fallbacks(&self) -> u64 {
        self.st
            .as_ref()
            .map_or(0, |s| s.allocator.stats().chiplet_fallbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_types::{SmId, TbId};

    fn ctx(va: u64, chiplet: u8) -> FaultCtx {
        FaultCtx {
            va: VirtAddr::new(va),
            alloc: AllocId::new(0),
            requester: ChipletId::new(chiplet),
            sm: SmId::new(0),
            tb: TbId::new(0),
            cycle: 0,
        }
    }

    fn ev(va: u64, chiplet: u8) -> WalkEvent {
        WalkEvent {
            va: VirtAddr::new(va),
            alloc: AllocId::new(0),
            requester: ChipletId::new(chiplet),
            data_chiplet: ChipletId::new(0),
            cycle: 0,
        }
    }

    /// Fault in a whole 2MB block from chiplet 0 and return the promote
    /// directives observed.
    fn fill_block(c: &mut CNuma, base: u64) -> bool {
        let mut promoted = false;
        for i in 0..32u64 {
            let dirs = c.on_fault(&ctx(base + i * BASE_PAGE_BYTES, 0)).unwrap();
            promoted |= dirs.iter().any(|d| matches!(d, Directive::Promote { .. }));
        }
        promoted
    }

    #[test]
    fn promotes_blocks_like_2m_paging() {
        let mut c = CNuma::new();
        c.begin(&[], &SimConfig::baseline());
        assert!(fill_block(&mut c, 2 << 20));
    }

    #[test]
    fn splits_remote_heavy_blocks_to_dominant_accessors() {
        let mut c = CNuma::new();
        c.begin(&[], &SimConfig::baseline());
        let base = 2u64 << 20;
        fill_block(&mut c, base);
        // Pages 16..32 hammered by chiplet 2; pages 0..16 by chiplet 0.
        for i in 0..32u64 {
            let who = if i < 16 { 0 } else { 2 };
            for _ in 0..4 {
                c.on_access(&ev(base + i * BASE_PAGE_BYTES, who));
            }
        }
        let dirs = c.on_epoch(1_000);
        // Unmap of the 2MB leaf, 32 re-maps, and 16 migrations.
        assert!(matches!(dirs[0], Directive::Unmap { .. }));
        let maps = dirs
            .iter()
            .filter(|d| matches!(d, Directive::Map { .. }))
            .count();
        let migs: Vec<_> = dirs
            .iter()
            .filter_map(|d| match d {
                Directive::Migrate { va, to_pa } => Some((*va, *to_pa)),
                _ => None,
            })
            .collect();
        assert_eq!(maps, 32);
        assert_eq!(migs.len(), 16);
        let layout = PhysLayout::new(4);
        for (va, to) in migs {
            assert!(va.raw() >= base + 16 * BASE_PAGE_BYTES);
            assert_eq!(layout.chiplet_of(to).index(), 2);
        }
        // Converged: next epoch with balanced counts does nothing.
        assert!(c.on_epoch(2_000).is_empty());
    }

    #[test]
    fn local_blocks_are_left_alone() {
        let mut c = CNuma::new();
        c.begin(&[], &SimConfig::baseline());
        let base = 2u64 << 20;
        fill_block(&mut c, base);
        for i in 0..32u64 {
            for _ in 0..4 {
                c.on_access(&ev(base + i * BASE_PAGE_BYTES, 0));
            }
        }
        assert!(c.on_epoch(1_000).is_empty());
    }

    #[test]
    fn inter_variant_descends_the_ladder_gradually() {
        let mut c = CNuma::with_intermediate_sizes();
        c.begin(&[], &SimConfig::baseline());
        let base = 2u64 << 20;
        fill_block(&mut c, base);
        // Every 512KB sub-region is dominated by a different chiplet.
        let hammer = |c: &mut CNuma| {
            for i in 0..32u64 {
                let who = (i / 8) as u8; // 8 pages = 512KB per chiplet
                for _ in 0..4 {
                    c.on_access(&ev(base + i * BASE_PAGE_BYTES, who));
                }
            }
        };
        hammer(&mut c);
        let dirs = c.on_epoch(1_000);
        // First step: split to 512KB regions; 3 of 4 regions move (region
        // 0 already lives on chiplet 0).
        let migs = dirs
            .iter()
            .filter(|d| matches!(d, Directive::Migrate { .. }))
            .count();
        assert_eq!(migs, 24);
        // The regions are now local; further epochs do not descend.
        hammer(&mut c);
        assert!(c.on_epoch(2_000).is_empty());
    }
}
