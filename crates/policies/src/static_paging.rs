//! Static paging at a fixed page size, with first-touch or static-analysis
//! placement (paper configs 1, 2, 5-7, 9 and the SA baselines of §5.2).

use mcm_mem::{FrameAllocator, ReservationTable};
use mcm_sim::{AllocInfo, Directive, FaultCtx, PagingPolicy, SimConfig, SimError, StaticHint};
use mcm_types::{AllocId, ChipletId, PageSize, PhysLayout, VirtAddr, BASE_PAGE_BYTES};

use crate::mem_to_sim;

/// How the target chiplet of a page is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// First-touch (FT \[13\]): the page goes to the chiplet whose thread
    /// faulted it.
    FirstTouch,
    /// Static-analysis (SA = LASP \[47\] + SUV \[17\]): the page goes where the
    /// compile-time model predicts its accessors run; unanalysable
    /// structures fall back to round-robin interleaving.
    StaticAnalysis,
}

/// Fixed-page-size demand paging with physical-frame reservation (paper
/// Fig. 5): for sizes above 64KB the driver reserves a frame of the full
/// size, populates 64KB subpages on demand, and promotes once complete.
/// The demand granularity is 64KB for *every* size (4KB pages are grouped
/// 16-to-a-fault), keeping fault counts identical across configurations.
///
/// # Examples
///
/// ```
/// use mcm_policies::{s64k, s2m, static_paging, Placement};
/// use mcm_sim::PagingPolicy;
/// use mcm_types::PageSize;
///
/// assert_eq!(s64k().name(), "S-64KB");
/// assert_eq!(s2m().name(), "S-2MB");
/// let s = static_paging(PageSize::Size256K, Placement::FirstTouch);
/// assert_eq!(s.name(), "S-256KB");
/// ```
#[derive(Debug)]
pub struct StaticPaging {
    name: String,
    size: PageSize,
    placement: Placement,
    st: Option<St>,
}

#[derive(Debug)]
struct St {
    allocator: FrameAllocator,
    reservations: ReservationTable,
    allocs: Vec<AllocInfo>,
    layout: PhysLayout,
}

/// Static paging with an explicit size and placement; named
/// `"S-<size>"` or `"SA-<size>"`.
pub fn static_paging(size: PageSize, placement: Placement) -> StaticPaging {
    let prefix = match placement {
        Placement::FirstTouch => "S",
        Placement::StaticAnalysis => "SA",
    };
    StaticPaging {
        name: format!("{prefix}-{size}"),
        size,
        placement,
        st: None,
    }
}

/// Config 1: static 64KB paging, first-touch (also the FT baseline).
pub fn s64k() -> StaticPaging {
    static_paging(PageSize::Size64K, Placement::FirstTouch)
}

/// Config 2: static 2MB paging, first-touch.
pub fn s2m() -> StaticPaging {
    static_paging(PageSize::Size2M, Placement::FirstTouch)
}

/// Static 4KB paging (the §3.3 study's smallest size).
pub fn s4k() -> StaticPaging {
    static_paging(PageSize::Size4K, Placement::FirstTouch)
}

/// Config 6: MGvm \[87\] — 64KB first-touch data placement whose translation
/// benefit comes from requester-local PTE placement. Pair with
/// `SimConfig { pte_placement: PtePlacement::RequesterLocal, .. }`.
pub fn mgvm() -> StaticPaging {
    StaticPaging {
        name: "MGvm".into(),
        ..s64k()
    }
}

/// Config 7: Barre-Chord \[32\] — 64KB first-touch placement whose TLB
/// controller coalesces uniform-stride PTE patterns. Pair with
/// `TranslationConfig { barre_pattern: true, .. }`.
pub fn fbarre() -> StaticPaging {
    StaticPaging {
        name: "F-Barre".into(),
        ..s64k()
    }
}

/// Config 9: the `Ideal` upper bound — 64KB placement with magic 2MB
/// translation reach. Pair with `TranslationConfig { ideal_2m_reach: true,
/// .. }`.
pub fn ideal() -> StaticPaging {
    StaticPaging {
        name: "Ideal".into(),
        ..s64k()
    }
}

/// SA-64KB (§5.2): static-analysis placement at 64KB pages.
pub fn sa_64k() -> StaticPaging {
    static_paging(PageSize::Size64K, Placement::StaticAnalysis)
}

/// SA-2MB (§5.2): static-analysis placement at 2MB pages.
pub fn sa_2m() -> StaticPaging {
    static_paging(PageSize::Size2M, Placement::StaticAnalysis)
}

impl StaticPaging {
    /// The fixed page size this policy maps with.
    pub fn page_size(&self) -> PageSize {
        self.size
    }

    /// Chooses the chiplet that should own the page containing `va`.
    fn target_chiplet(&self, ctx: &FaultCtx) -> Result<ChipletId, SimError> {
        let Some(st) = self.st.as_ref() else {
            return Err(SimError::PolicyViolation {
                reason: "on_fault before begin()".into(),
            });
        };
        match self.placement {
            Placement::FirstTouch => Ok(ctx.requester),
            Placement::StaticAnalysis => {
                let Some(info) = st.allocs.iter().find(|a| a.id == ctx.alloc) else {
                    return Err(SimError::PolicyViolation {
                        reason: format!("fault for unknown allocation {}", ctx.alloc),
                    });
                };
                // Placement decisions apply at the mapping granularity:
                // a 2MB page is placed where its *region base* belongs,
                // which is exactly the misalignment effect of §5.2.
                let gran = self.size.bytes().max(BASE_PAGE_BYTES);
                let region_off = ctx.va.align_down(gran).distance_from(info.base);
                Ok(sa_chiplet(info, region_off, st.layout.num_chiplets()))
            }
        }
    }
}

/// The chiplet a static-analysis pass would assign to the page at
/// `offset` within `info` (LASP/SUV model; §5.2).
pub(crate) fn sa_chiplet(info: &AllocInfo, offset: u64, chiplets: usize) -> ChipletId {
    match info.hint {
        StaticHint::Partitioned { period_bytes } => {
            let p = if period_bytes == 0 || period_bytes > info.bytes {
                info.bytes
            } else {
                period_bytes
            };
            let pos = offset % p;
            ChipletId::new(
                ((pos as u128 * chiplets as u128 / p as u128) as usize).min(chiplets - 1) as u8,
            )
        }
        // Shared or unanalysable: interleave 64KB pages round-robin.
        StaticHint::Shared | StaticHint::Irregular => {
            ChipletId::new(((offset / BASE_PAGE_BYTES) % chiplets as u64) as u8)
        }
    }
}

impl PagingPolicy for StaticPaging {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&mut self, allocs: &[AllocInfo], cfg: &SimConfig) {
        let scatter = std::env::var("CLAP_SCATTER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        self.st = Some(St {
            allocator: FrameAllocator::new(cfg.layout(), cfg.pf_blocks_per_chiplet)
                .with_scatter(scatter),
            reservations: ReservationTable::new(),
            allocs: allocs.to_vec(),
            layout: cfg.layout(),
        });
    }

    fn on_fault(&mut self, ctx: &FaultCtx) -> Result<Vec<Directive>, SimError> {
        let target = self.target_chiplet(ctx)?;
        let Some(st) = self.st.as_mut() else {
            return Err(SimError::PolicyViolation {
                reason: "on_fault before begin()".into(),
            });
        };
        map_demand_page(st, ctx.va, ctx.alloc, target, self.size)
    }

    fn blocks_consumed(&self) -> Option<usize> {
        self.st.as_ref().map(|s| s.allocator.blocks_consumed())
    }

    fn frame_fallbacks(&self) -> u64 {
        self.st
            .as_ref()
            .map_or(0, |s| s.allocator.stats().chiplet_fallbacks)
    }
}

/// Shared fault-resolution machinery: maps the 64KB demand granule at
/// `page` under a fixed-page-size regime targeting `target`.
fn map_demand_page(
    st: &mut St,
    page: VirtAddr,
    alloc: AllocId,
    target: ChipletId,
    size: PageSize,
) -> Result<Vec<Directive>, SimError> {
    match size {
        PageSize::Size4K => {
            // One 64KB frame backs the granule; sixteen 4KB leaves.
            let (frame, _) = st
                .allocator
                .alloc_frame_or_fallback(target, PageSize::Size64K, alloc)
                .map_err(mem_to_sim)?;
            Ok((0..16u64)
                .map(|i| Directive::Map {
                    va: page + i * 4096,
                    pa: frame + i * 4096,
                    size: PageSize::Size4K,
                    alloc,
                })
                .collect())
        }
        PageSize::Size64K => {
            let (frame, _) = st
                .allocator
                .alloc_frame_or_fallback(target, PageSize::Size64K, alloc)
                .map_err(mem_to_sim)?;
            Ok(vec![Directive::Map {
                va: page,
                pa: frame,
                size: PageSize::Size64K,
                alloc,
            }])
        }
        big => {
            let region = page.align_down(big.bytes());
            if st.reservations.covering(page).is_none() {
                let (frame, served) = st
                    .allocator
                    .alloc_frame_or_fallback(target, big, alloc)
                    .map_err(mem_to_sim)?;
                st.reservations
                    .reserve(region, frame, big, served)
                    .map_err(mem_to_sim)?;
            }
            let (pa, full) = st.reservations.populate(page).map_err(mem_to_sim)?;
            let mut dirs = vec![Directive::Map {
                va: page,
                pa,
                size: PageSize::Size64K,
                alloc,
            }];
            if full {
                st.reservations.release(region).map_err(mem_to_sim)?;
                dirs.push(Directive::Promote {
                    base: region,
                    size: big,
                });
            }
            Ok(dirs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_types::{SmId, TbId};

    fn ctx(va: u64, alloc: u16, chiplet: u8) -> FaultCtx {
        FaultCtx {
            va: VirtAddr::new(va),
            alloc: AllocId::new(alloc),
            requester: ChipletId::new(chiplet),
            sm: SmId::new(0),
            tb: TbId::new(0),
            cycle: 0,
        }
    }

    fn allocs() -> Vec<AllocInfo> {
        vec![AllocInfo {
            id: AllocId::new(0),
            base: VirtAddr::new(2 << 20),
            bytes: 32 << 20,
            name: "a".into(),
            hint: StaticHint::Partitioned {
                period_bytes: 1 << 20,
            },
        }]
    }

    fn begin(mut p: StaticPaging) -> StaticPaging {
        p.begin(&allocs(), &SimConfig::baseline());
        p
    }

    #[test]
    fn s64k_maps_single_page_at_requester() {
        let mut p = begin(s64k());
        let dirs = p.on_fault(&ctx(2 << 20, 0, 3)).unwrap();
        assert_eq!(dirs.len(), 1);
        match dirs[0] {
            Directive::Map { va, pa, size, .. } => {
                assert_eq!(va.raw(), 2 << 20);
                assert_eq!(size, PageSize::Size64K);
                assert_eq!(PhysLayout::new(4).chiplet_of(pa).index(), 3);
            }
            _ => panic!("expected Map"),
        }
    }

    #[test]
    fn s4k_maps_sixteen_leaves_per_granule() {
        let mut p = begin(s4k());
        let dirs = p.on_fault(&ctx(2 << 20, 0, 1)).unwrap();
        assert_eq!(dirs.len(), 16);
        for (i, d) in dirs.iter().enumerate() {
            match *d {
                Directive::Map { va, size, .. } => {
                    assert_eq!(size, PageSize::Size4K);
                    assert_eq!(va.raw(), (2 << 20) + i as u64 * 4096);
                }
                _ => panic!("expected Map"),
            }
        }
    }

    #[test]
    fn s2m_reserves_then_promotes_when_full() {
        let mut p = begin(s2m());
        let base = 2u64 << 20;
        let mut promoted = false;
        let mut first_pa = None;
        for i in 0..32u64 {
            let dirs = p.on_fault(&ctx(base + i * BASE_PAGE_BYTES, 0, 2)).unwrap();
            match dirs[0] {
                Directive::Map { pa, size, .. } => {
                    assert_eq!(size, PageSize::Size64K);
                    // All subpages land contiguously in one reserved frame.
                    if let Some(f) = first_pa {
                        assert_eq!(pa.raw(), f + i * BASE_PAGE_BYTES);
                    } else {
                        first_pa = Some(pa.raw());
                        assert_eq!(pa.raw() % (2 << 20), 0);
                    }
                }
                _ => panic!("expected Map first"),
            }
            if i < 31 {
                assert_eq!(dirs.len(), 1);
            } else {
                assert_eq!(dirs.len(), 2);
                assert!(matches!(
                    dirs[1],
                    Directive::Promote {
                        size: PageSize::Size2M,
                        ..
                    }
                ));
                promoted = true;
            }
        }
        assert!(promoted);
    }

    #[test]
    fn intermediate_size_promotes_at_its_own_granularity() {
        let mut p = begin(static_paging(PageSize::Size256K, Placement::FirstTouch));
        let base = 2u64 << 20;
        for i in 0..3 {
            let dirs = p.on_fault(&ctx(base + i * BASE_PAGE_BYTES, 0, 0)).unwrap();
            assert_eq!(dirs.len(), 1, "page {i}");
        }
        let dirs = p.on_fault(&ctx(base + 3 * BASE_PAGE_BYTES, 0, 0)).unwrap();
        assert_eq!(dirs.len(), 2);
        assert!(matches!(
            dirs[1],
            Directive::Promote {
                size: PageSize::Size256K,
                ..
            }
        ));
    }

    #[test]
    fn sa_partitioned_places_by_period_not_requester() {
        let mut p = begin(sa_64k());
        let base = 2u64 << 20;
        // Period 1MB over 4 chiplets: 256KB segments.
        for (off, want) in [
            (0u64, 0usize),
            (256 << 10, 1),
            (512 << 10, 2),
            (768 << 10, 3),
            (1 << 20, 0),
        ] {
            let dirs = p.on_fault(&ctx(base + off, 0, 3)).unwrap(); // requester 3 ignored
            match dirs[0] {
                Directive::Map { pa, .. } => {
                    assert_eq!(
                        PhysLayout::new(4).chiplet_of(pa).index(),
                        want,
                        "offset {off:#x}"
                    );
                }
                _ => panic!("expected Map"),
            }
        }
    }

    #[test]
    fn sa_irregular_interleaves_round_robin() {
        let info = AllocInfo {
            id: AllocId::new(0),
            base: VirtAddr::new(0),
            bytes: 32 << 20,
            name: "x".into(),
            hint: StaticHint::Irregular,
        };
        let c: Vec<usize> = (0..6)
            .map(|i| sa_chiplet(&info, i * BASE_PAGE_BYTES, 4).index())
            .collect();
        assert_eq!(c, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn blocks_consumed_reports_allocator_usage() {
        let mut p = begin(s64k());
        assert_eq!(p.blocks_consumed(), Some(0));
        p.on_fault(&ctx(2 << 20, 0, 0)).unwrap();
        assert_eq!(p.blocks_consumed(), Some(1));
    }
}
