//! End-to-end integration: suite workloads through the full simulator
//! under baseline policies. These tests pin the qualitative *shapes* the
//! paper's motivation (§1, §3.3) rests on.

use mcm_policies::{s2m, s64k, sa_64k, Nuba};
use mcm_sim::{run, PagingPolicy, RunStats, SimConfig, TranslationConfig};
use mcm_workloads::{suite, SyntheticWorkload, FOOTPRINT_SCALE};

fn cfg() -> SimConfig {
    SimConfig::baseline().scaled(FOOTPRINT_SCALE)
}

/// Runs at quarter threadblock scale to keep the suite fast; the asserted
/// shapes are scale-robust.
fn run_with(w: &SyntheticWorkload, mut policy: impl PagingPolicy) -> RunStats {
    let w = w.clone().with_tb_scale(1, 4);
    run(&cfg(), &w, &mut policy, None).expect("run succeeds")
}

#[test]
fn ste_small_pages_keep_accesses_local() {
    let w = suite::ste();
    let small = run_with(&w, s64k());
    assert!(small.mem_insts > 100_000, "workload produced real traffic");
    assert!(
        small.remote_ratio() < 0.15,
        "64KB first-touch should be mostly local, got {:.3}",
        small.remote_ratio()
    );
    assert!(small.faults > 0);
    assert!(small.cycles > 0);
}

#[test]
fn ste_large_pages_inflate_remote_ratio() {
    let w = suite::ste();
    let small = run_with(&w, s64k());
    let large = run_with(&w, s2m());
    assert!(
        large.remote_ratio() > small.remote_ratio() + 0.2,
        "2MB paging must misplace STE data: 64KB {:.3} vs 2MB {:.3}",
        small.remote_ratio(),
        large.remote_ratio()
    );
    // And that misplacement must cost performance.
    assert!(
        small.speedup_over(&large) > 1.05,
        "64KB should beat 2MB on STE: {} vs {} cycles",
        small.cycles,
        large.cycles
    );
}

#[test]
fn blk_partitioned_workload_prefers_large_pages() {
    let w = suite::blk();
    let small = run_with(&w, s64k());
    let large = run_with(&w, s2m());
    // Block-partitioned structures stay local even at 2MB...
    assert!(
        large.remote_ratio() < small.remote_ratio() + 0.05,
        "2MB should not inflate BLK remote ratio: {:.3} vs {:.3}",
        small.remote_ratio(),
        large.remote_ratio()
    );
    // ...and translation gets no more expensive (usually cheaper).
    assert!(
        large.avg_translation_latency() <= small.avg_translation_latency() * 1.05,
        "2MB should not inflate translation latency: {:.1} vs {:.1}",
        small.avg_translation_latency(),
        large.avg_translation_latency()
    );
    assert!(
        large.speedup_over(&small) > 0.97,
        "2MB should be at least competitive on BLK: {} vs {} cycles",
        large.cycles,
        small.cycles
    );
}

#[test]
fn larger_pages_reduce_tlb_misses_everywhere() {
    let w = suite::dwt();
    let small = run_with(&w, s64k());
    let large = run_with(&w, s2m());
    assert!(
        large.l2tlb_mpki() < small.l2tlb_mpki(),
        "2MB must cut TLB MPKI: {:.2} vs {:.2}",
        small.l2tlb_mpki(),
        large.l2tlb_mpki()
    );
}

#[test]
fn fault_counts_are_page_size_independent() {
    // Fig. 5's frame reservation keeps demand granularity at 64KB for all
    // sizes, so fault counts must match (same pages touched).
    let w = suite::ste();
    let small = run_with(&w, s64k());
    let large = run_with(&w, s2m());
    assert_eq!(small.faults, large.faults);
}

#[test]
fn promotions_happen_under_2m_paging_only() {
    let w = suite::blk();
    let small = run_with(&w, s64k());
    let large = run_with(&w, s2m());
    assert_eq!(small.promotions, 0);
    assert!(
        large.promotions > 0,
        "2MB paging should promote full blocks"
    );
}

#[test]
fn sa_placement_matches_ft_on_regular_workloads() {
    let w = suite::twodc();
    let ft = run_with(&w, s64k());
    let sa = run_with(&w, sa_64k());
    // Both place partitioned data well.
    assert!(ft.remote_ratio() < 0.15);
    assert!(sa.remote_ratio() < 0.20);
}

#[test]
fn sa_fails_on_irregular_workloads() {
    let w = suite::paf();
    let ft = run_with(&w, s64k());
    let sa = run_with(&w, sa_64k());
    assert!(
        sa.remote_ratio() > ft.remote_ratio() + 0.2,
        "static analysis cannot place irregular data: FT {:.3} vs SA {:.3}",
        ft.remote_ratio(),
        sa.remote_ratio()
    );
}

#[test]
fn remote_caching_recovers_part_of_2m_misplacement() {
    let w = suite::ste().with_tb_scale(1, 4);
    // `run_with` scales by another 1/4; scale the cached run identically so
    // both sides execute the same workload.
    let plain = run_with(&w, s2m());
    let cfgv = cfg();
    let mut nuba = Nuba::for_config(&cfgv);
    let mut pol = s2m();
    let cached = run(
        &cfgv,
        &w.clone().with_tb_scale(1, 4),
        &mut pol,
        Some(&mut nuba),
    )
    .expect("run succeeds");
    assert!(cached.remote_cache_hits > 0);
    assert!(
        cached.speedup_over(&plain) > 1.0,
        "NUBA should help 2MB paging: {} vs {} cycles",
        cached.cycles,
        plain.cycles
    );
}

#[test]
fn ideal_translation_upper_bounds_static_64k() {
    let w = suite::ste().with_tb_scale(1, 4);
    let base = run_with(&w, s64k());
    let mut icfg = cfg();
    icfg.translation = TranslationConfig {
        ideal_2m_reach: true,
        ..TranslationConfig::baseline()
    };
    let mut pol = mcm_policies::ideal();
    let ideal = run(&icfg, &w.clone().with_tb_scale(1, 4), &mut pol, None).expect("run succeeds");
    // Same placement => same locality; magically bigger TLB reach => fewer
    // walks and at least equal performance.
    assert!((ideal.remote_ratio() - base.remote_ratio()).abs() < 0.02);
    assert!(ideal.l2tlb_misses < base.l2tlb_misses);
    assert!(ideal.speedup_over(&base) >= 1.0);
}

#[test]
fn eight_chiplet_machine_runs_the_subset() {
    let w = suite::fdt().with_tb_scale(1, 2);
    let mut c8 = SimConfig::eight_chiplets().scaled(FOOTPRINT_SCALE);
    c8.epoch_cycles = u64::MAX; // no reactive policies here
    let mut pol = s64k();
    let s = run(&c8, &w, &mut pol, None).expect("run succeeds");
    assert!(s.mem_insts > 0);
    assert!(s.remote_ratio() < 0.2);
}
